package scamper

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

// The remote control protocol (§5.8): resource-limited devices cannot hold
// the IP-to-AS tables, stop sets, and alias state bdrmap needs (~150MB),
// so the device runs only a thin probing agent (a few MB) that dials back
// to the central system and executes probe commands it receives.
//
// Version 2 of the protocol assumes the transport is hostile — home-gateway
// uplinks drop, stall, corrupt, and duplicate traffic, and the device may
// reboot mid-run — so every frame is checksummed and sequence-numbered:
//
//	frame   := length(uint32) payload
//	payload := crc32(uint32) seq(uint32) body
//	body    := type(uint8) ...
//
// The CRC (IEEE) covers seq+body. The controller assigns sequence numbers
// 1,2,3,… to commands and keeps exactly one in flight; responses echo the
// request's seq. The agent remembers the last (seq, response) pair and
// replays the cached response when it sees a duplicate seq, so controller
// retries never re-execute a probe — which is what keeps a faulted run's
// measurement byte-identical to a clean one. Hello/helloAck use seq 0.
//
// A reconnecting agent re-sends hello with its session id and last seq;
// the controller routes the new connection to the existing session
// ("resume") instead of treating it as a fresh vantage point, so a VP that
// drops mid-run does not re-probe completed targets.
const (
	msgHello    = 0x01
	msgTraceReq = 0x02
	msgTraceRsp = 0x03
	msgProbeReq = 0x04
	msgProbeRsp = 0x05
	msgAdvance  = 0x06
	msgAdvanced = 0x07
	msgBye      = 0x08
	msgHelloAck = 0x09
	msgClock    = 0x0a
	msgClockRsp = 0x0b
	msgSpanPull = 0x0c
	msgSpanRsp  = 0x0d
	msgSigReq   = 0x0e
	msgSigRsp   = 0x0f
)

// helloCapSpans advertises that the agent records session spans and
// understands msgSpanPull. Capabilities ride in an optional trailing byte
// of the hello body; a v2 peer that predates them parses the fixed fields
// and ignores the tail, and a missing tail reads as "no capabilities" —
// the controller then never sends the new message, so mixed-version
// deployments keep working.
const helloCapSpans = 0x01

// helloCapSig advertises that the agent can compute path signatures
// (msgSigReq), which is what lets the controller run the incremental
// RoundState cache against a *remote* vantage point: the fleet
// coordinator replays a killed shard's surviving transcript only when the
// agent re-attests each destination's current signature. Same mixed-
// version story as helloCapSpans — absent bit means the controller never
// sends the message and the cache silently disables.
const helloCapSig = 0x02

// maxFrame bounds a frame; a trace command carrying a full stop set is the
// largest message.
const maxFrame = 1 << 20

// frameChunk bounds a single payload allocation while reading: a hostile
// length prefix near maxFrame only costs memory as fast as the peer
// actually delivers bytes.
const frameChunk = 64 << 10

// envelope is the crc32+seq prefix every payload carries.
const envelope = 8

// errCorruptFrame marks a frame whose checksum (or envelope structure) did
// not verify; consumers retry rather than trust the contents.
var errCorruptFrame = errors.New("scamper: corrupt frame")

func writeFrame(w io.Writer, payload []byte) error {
	// A frame goes out in ONE Write call so that fault injectors (and real
	// kernels under memory pressure) see frame-granular writes: a dropped
	// or duplicated Write is a dropped or duplicated frame, never a
	// desynchronized stream.
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("scamper: bad frame length %d", n)
	}
	// Grow the buffer chunk by chunk instead of trusting the length prefix
	// with a single up-front allocation: a hostile prefix near maxFrame
	// only costs memory as fast as the peer actually delivers bytes.
	buf := make([]byte, min(n, frameChunk))
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	for len(buf) < n {
		k := min(n-len(buf), frameChunk)
		off := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return buf, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// writeMsg wraps body in the checksummed, sequence-numbered envelope and
// writes it as one frame.
func writeMsg(w io.Writer, seq uint32, body []byte) error {
	payload := make([]byte, envelope+len(body))
	binary.BigEndian.PutUint32(payload[4:8], seq)
	copy(payload[envelope:], body)
	binary.BigEndian.PutUint32(payload[0:4], crc32.ChecksumIEEE(payload[4:]))
	return writeFrame(w, payload)
}

// readMsg reads one frame and verifies its envelope. A checksum mismatch or
// an envelope too short to carry a message returns errCorruptFrame.
func readMsg(r io.Reader) (seq uint32, body []byte, err error) {
	payload, err := readFrame(r)
	if err != nil {
		return 0, nil, err
	}
	if len(payload) < envelope+1 {
		return 0, nil, errCorruptFrame
	}
	if crc32.ChecksumIEEE(payload[4:]) != binary.BigEndian.Uint32(payload[0:4]) {
		return 0, nil, errCorruptFrame
	}
	return binary.BigEndian.Uint32(payload[4:8]), payload[envelope:], nil
}

// ---------------------------------------------------------------------------
// Hello / resume handshake

// buildHello encodes the agent's opening message:
//
//	msgHello nameLen(1) name flags(1) sessionID(8) lastSeq(4) [caps(1)]
//
// flags bit0 marks a resume (lastSeq is meaningful). The optional caps
// byte is appended by buildHelloCaps; parseHello ignores it and
// parseHelloCaps recovers it.
func buildHello(name string, resume bool, sessionID uint64, lastSeq uint32) []byte {
	b := make([]byte, 0, 2+len(name)+13)
	b = append(b, msgHello, byte(len(name)))
	b = append(b, name...)
	var flags byte
	if resume {
		flags = 1
	}
	b = append(b, flags)
	var tail [12]byte
	binary.BigEndian.PutUint64(tail[0:8], sessionID)
	binary.BigEndian.PutUint32(tail[8:12], lastSeq)
	return append(b, tail[:]...)
}

// buildHelloCaps is buildHello plus the trailing capability byte.
func buildHelloCaps(name string, resume bool, sessionID uint64, lastSeq uint32, caps byte) []byte {
	return append(buildHello(name, resume, sessionID, lastSeq), caps)
}

// parseHelloCaps extracts the capability byte from a hello body that
// parseHello accepted. Hellos from peers predating capabilities have no
// tail and read as 0.
func parseHelloCaps(body []byte) byte {
	n := int(body[1])
	if len(body) > 2+n+13 {
		return body[2+n+13]
	}
	return 0
}

// parseHello decodes a hello body. It is a pure function so the fuzzer can
// hammer it directly. Bytes past the fixed fields (the capability tail)
// are ignored here.
func parseHello(body []byte) (name string, resume bool, sessionID uint64, lastSeq uint32, err error) {
	if len(body) < 2 || body[0] != msgHello {
		return "", false, 0, 0, fmt.Errorf("scamper: bad hello")
	}
	n := int(body[1])
	if n == 0 || len(body) < 2+n+13 {
		return "", false, 0, 0, fmt.Errorf("scamper: bad hello")
	}
	name = string(body[2 : 2+n])
	rest := body[2+n:]
	resume = rest[0]&1 != 0
	sessionID = binary.BigEndian.Uint64(rest[1:9])
	lastSeq = binary.BigEndian.Uint32(rest[9:13])
	return name, resume, sessionID, lastSeq, nil
}

// sessionIDFor derives a stable (deterministic) session id from the VP name.
func sessionIDFor(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// ---------------------------------------------------------------------------
// Agent (device side)

// DialOptions configures the agent's reconnect behavior.
type DialOptions struct {
	// Dial establishes the transport; defaults to net.Dial("tcp", addr).
	// Fault tests substitute an injector's DialFunc here.
	Dial func(addr string) (net.Conn, error)
	// Wrap, if set, wraps each established connection (e.g. with a fault
	// injector) before the protocol runs over it.
	Wrap func(net.Conn) net.Conn
	// MaxRedials bounds consecutive failed connection attempts; the
	// counter resets whenever a handshake completes. Default 8; Disabled
	// means zero (give up after the first failure).
	MaxRedials int
	// RedialBase/RedialMax shape the exponential backoff between redials.
	// Defaults 5ms / 250ms.
	RedialBase time.Duration
	RedialMax  time.Duration
	// HelloTimeout bounds the wait for the controller's helloAck.
	// Default 2s.
	HelloTimeout time.Duration
}

func (o DialOptions) withDefaults() DialOptions {
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	switch o.MaxRedials {
	case Disabled:
		o.MaxRedials = 0
	case 0:
		o.MaxRedials = 8
	}
	if o.RedialBase == 0 {
		o.RedialBase = 5 * time.Millisecond
	}
	if o.RedialMax == 0 {
		o.RedialMax = 250 * time.Millisecond
	}
	if o.HelloTimeout == 0 {
		o.HelloTimeout = 2 * time.Second
	}
	return o
}

// Agent executes probe commands against a local engine on behalf of a
// central controller. It keeps no measurement state beyond one in-flight
// command plus the last response (for duplicate-suppression replay), which
// is what lets it fit on a low-resource device.
type Agent struct {
	E  *probe.Engine
	VP *topo.VP
	// Spans, when set, records one "agent-session" span per completed
	// handshake (sim duration from the engine clock, resume flag, and a
	// volatile command count) and advertises helloCapSpans so the
	// controller can pull the log with msgSpanPull and graft it into the
	// run's span tree. Nil keeps the agent at the pre-span protocol.
	Spans *obs.SpanLog

	mu       sync.Mutex
	peakBuf  int
	commands int64
	lastSeq  uint32
	lastRsp  []byte
	execs    map[uint32]int // per-seq execution count; must never exceed 1
	sessEnd  func()         // closes the current session span; idempotent

	helloTimeout time.Duration
}

// StateBytes reports the approximate measurement state held by the agent:
// just its largest single command buffer.
func (a *Agent) StateBytes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peakBuf
}

// Commands returns how many commands the agent has executed.
func (a *Agent) Commands() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.commands
}

// CountExecs returns a copy of the per-sequence execution counts. The
// duplicate-suppression cache guarantees every entry is exactly 1; the
// property tests assert this.
func (a *Agent) CountExecs() map[uint32]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[uint32]int, len(a.execs))
	for k, v := range a.execs {
		out[k] = v
	}
	return out
}

func (a *Agent) note(bufLen int) {
	a.mu.Lock()
	if bufLen > a.peakBuf {
		a.peakBuf = bufLen
	}
	a.commands++
	a.mu.Unlock()
}

// cache records the response for seq so a duplicate command replays
// instead of re-executing.
func (a *Agent) cache(seq uint32, rsp []byte) {
	a.mu.Lock()
	a.lastSeq = seq
	a.lastRsp = rsp
	if a.execs == nil {
		a.execs = make(map[uint32]int)
	}
	a.execs[seq]++
	a.mu.Unlock()
}

// beginSession opens the session span and returns its (idempotent) end
// function. The simulated duration is read from the engine clock, which
// only advances when a command actually executes — replayed duplicates
// don't move it — so session spans are deterministic for a fixed fault
// schedule. The command count is retry-timing-dependent and therefore
// volatile.
func (a *Agent) beginSession(resume bool) func() {
	if a.Spans == nil {
		return func() {}
	}
	sp := a.Spans.Begin(0, "agent-session", a.VP.Name)
	sp.SetAttr("resume", resume)
	start := a.E.Now()
	a.mu.Lock()
	cmds := a.commands
	a.mu.Unlock()
	var once sync.Once
	end := func() {
		once.Do(func() {
			a.mu.Lock()
			delta := a.commands - cmds
			a.mu.Unlock()
			sp.SetAttr("~commands", delta)
			sp.AddSim(a.E.Now() - start)
			sp.End()
		})
	}
	a.mu.Lock()
	a.sessEnd = end
	a.mu.Unlock()
	return end
}

// spanDump closes the current session span (the pull is the session's
// last measurement-relevant command) and returns the completed span log
// as msgSpanRsp + JSONL.
func (a *Agent) spanDump() ([]byte, error) {
	a.mu.Lock()
	end := a.sessEnd
	a.mu.Unlock()
	if end != nil {
		end()
	}
	var buf bytes.Buffer
	buf.WriteByte(msgSpanRsp)
	if err := obs.WriteSpanJSONL(&buf, a.Spans.Records()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (a *Agent) cached(seq uint32) ([]byte, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lastRsp != nil && seq == a.lastSeq {
		return a.lastRsp, true
	}
	return nil, false
}

// Dial connects to the controller once and serves commands until bye or
// error. For fault-tolerant operation use DialRetry.
func (a *Agent) Dial(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return a.ServeConn(conn)
}

// DialRetry connects to the controller and keeps reconnecting (resuming the
// session) across transport failures until the controller says bye or the
// consecutive-failure budget is spent. This is the loop a deployed home
// device runs: reboots and line drops must not end the measurement.
func (a *Agent) DialRetry(addr string, opts DialOptions) error {
	opts = opts.withDefaults()
	a.helloTimeout = opts.HelloTimeout
	fails := 0
	var lastErr error
	for {
		if fails > opts.MaxRedials {
			if lastErr == nil {
				lastErr = fmt.Errorf("scamper: redial budget exhausted")
			}
			return lastErr
		}
		if fails > 0 {
			d := opts.RedialBase << uint(fails-1)
			if d > opts.RedialMax {
				d = opts.RedialMax
			}
			time.Sleep(d)
		}
		conn, err := opts.Dial(addr)
		if err != nil {
			fails++
			lastErr = err
			continue
		}
		if opts.Wrap != nil {
			conn = opts.Wrap(conn)
		}
		ended, progressed, err := a.serve(conn)
		conn.Close()
		if ended {
			return nil
		}
		if progressed {
			fails = 0
		}
		fails++
		lastErr = err
	}
}

// ServeConn runs one protocol session over an established connection.
// A clean peer shutdown (bye or EOF) returns nil.
func (a *Agent) ServeConn(conn net.Conn) error {
	ended, _, err := a.serve(conn)
	if ended || err == io.EOF {
		return nil
	}
	return err
}

// serve sends hello, waits for the ack, then executes commands.
// ended reports a clean bye; progressed reports a completed handshake
// (used by DialRetry to reset its failure budget).
func (a *Agent) serve(conn net.Conn) (ended, progressed bool, err error) {
	a.mu.Lock()
	resume := a.lastRsp != nil
	lastSeq := a.lastSeq
	a.mu.Unlock()
	var caps byte
	if a.Spans != nil {
		caps |= helloCapSpans
	}
	// Signatures are pure engine CPU, so every agent build offers them.
	caps |= helloCapSig
	hello := buildHelloCaps(a.VP.Name, resume, sessionIDFor(a.VP.Name), lastSeq, caps)
	if err := writeMsg(conn, 0, hello); err != nil {
		return false, false, err
	}
	ht := a.helloTimeout
	if ht == 0 {
		ht = 2 * time.Second
	}
	conn.SetReadDeadline(time.Now().Add(ht))
	_, ack, err := readMsg(conn)
	if err != nil {
		return false, false, err
	}
	if len(ack) < 1 || ack[0] != msgHelloAck {
		return false, false, fmt.Errorf("scamper: bad hello ack")
	}
	conn.SetReadDeadline(time.Time{})
	progressed = true
	endSession := a.beginSession(resume)
	defer endSession()

	for {
		seq, req, err := readMsg(conn)
		if err != nil {
			return false, progressed, err
		}
		a.note(len(req))
		if req[0] == msgBye {
			return true, progressed, nil
		}
		// A duplicate of the last command means our response was lost:
		// replay it without re-executing the probe.
		if rsp, ok := a.cached(seq); ok {
			if err := writeMsg(conn, seq, rsp); err != nil {
				return false, progressed, err
			}
			continue
		}
		rsp, err := a.handle(req)
		if err != nil {
			return false, progressed, err
		}
		a.note(len(rsp))
		a.cache(seq, rsp)
		if err := writeMsg(conn, seq, rsp); err != nil {
			return false, progressed, err
		}
	}
}

// handle executes one command body and returns the response body.
func (a *Agent) handle(req []byte) ([]byte, error) {
	switch req[0] {
	case msgTraceReq:
		return a.handleTrace(req)
	case msgProbeReq:
		if len(req) < 6 {
			return nil, fmt.Errorf("scamper: short probe request")
		}
		target := netx.Addr(binary.BigEndian.Uint32(req[1:5]))
		m := probe.Method(req[5])
		r := a.E.Probe(a.VP, target, m)
		rsp := make([]byte, 24)
		rsp[0] = msgProbeRsp
		if r.OK {
			rsp[1] = 1
		}
		binary.BigEndian.PutUint32(rsp[2:6], uint32(r.From))
		binary.BigEndian.PutUint16(rsp[6:8], r.IPID)
		binary.BigEndian.PutUint64(rsp[8:16], uint64(r.When))
		binary.BigEndian.PutUint64(rsp[16:24], uint64(r.RTT))
		return rsp, nil
	case msgAdvance:
		if len(req) < 9 {
			return nil, fmt.Errorf("scamper: short advance request")
		}
		d := time.Duration(binary.BigEndian.Uint64(req[1:9]))
		a.E.Advance(d)
		return []byte{msgAdvanced}, nil
	case msgClock:
		rsp := make([]byte, 9)
		rsp[0] = msgClockRsp
		binary.BigEndian.PutUint64(rsp[1:9], uint64(a.E.Now()))
		return rsp, nil
	case msgSpanPull:
		return a.spanDump()
	case msgSigReq:
		if len(req) < 5 {
			return nil, fmt.Errorf("scamper: short signature request")
		}
		dst := netx.Addr(binary.BigEndian.Uint32(req[1:5]))
		rsp := make([]byte, 9)
		rsp[0] = msgSigRsp
		binary.BigEndian.PutUint64(rsp[1:9], a.E.PathSignature(a.VP, dst))
		return rsp, nil
	default:
		return nil, fmt.Errorf("scamper: unknown message type %#x", req[0])
	}
}

func (a *Agent) handleTrace(req []byte) ([]byte, error) {
	if len(req) < 7 {
		return nil, fmt.Errorf("scamper: short trace request")
	}
	dst := netx.Addr(binary.BigEndian.Uint32(req[1:5]))
	nStop := int(binary.BigEndian.Uint16(req[5:7]))
	if len(req) < 7+4*nStop {
		return nil, fmt.Errorf("scamper: truncated stop set")
	}
	stop := make(map[netx.Addr]bool, nStop)
	for i := 0; i < nStop; i++ {
		stop[netx.Addr(binary.BigEndian.Uint32(req[7+4*i:]))] = true
	}
	var stopFn func(netx.Addr) bool
	if nStop > 0 {
		stopFn = func(x netx.Addr) bool { return stop[x] }
	}
	res := a.E.Traceroute(a.VP, dst, stopFn)
	a.E.Advance(time.Duration(len(res.Hops)) * 10 * time.Millisecond)

	rsp := make([]byte, 0, 5+16*len(res.Hops))
	rsp = append(rsp, msgTraceRsp, boolByte(res.Reached), boolByte(res.Stopped))
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(res.Hops)))
	rsp = append(rsp, n[:]...)
	for _, h := range res.Hops {
		var hop [16]byte
		hop[0] = byte(h.TTL)
		hop[1] = byte(h.Type)
		binary.BigEndian.PutUint32(hop[2:6], uint32(h.Addr))
		binary.BigEndian.PutUint16(hop[6:8], h.IPID)
		binary.BigEndian.PutUint64(hop[8:16], uint64(h.RTT))
		rsp = append(rsp, hop[:]...)
	}
	return rsp, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Controller (central side)

type acceptResult struct {
	p   *RemoteProber
	err error
}

// Controller accepts callback connections from agents and routes
// reconnecting agents back to their existing sessions.
type Controller struct {
	ln      net.Listener
	acceptC chan acceptResult
	// done is closed when the dispatcher exits. acceptC itself is never
	// closed: an in-flight handshake goroutine may still be delivering,
	// and a send on a closed channel would panic the controller.
	done chan struct{}

	mu           sync.Mutex
	sessions     map[string]*RemoteProber
	obsReg       *obs.Registry
	resumes      *obs.Counter
	helloTimeout time.Duration
}

// Listen starts a controller on addr (use "127.0.0.1:0" for an ephemeral
// port) — the central system of §5.8. The dispatcher runs until Close.
func Listen(addr string) (*Controller, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		ln:           ln,
		acceptC:      make(chan acceptResult, 16),
		done:         make(chan struct{}),
		sessions:     make(map[string]*RemoteProber),
		helloTimeout: 2 * time.Second,
	}
	go c.dispatch()
	return c, nil
}

// SetObs routes recovery metrics (remote.resume, remote.retry.*) to reg.
// Call before accepting agents.
func (c *Controller) SetObs(reg *obs.Registry) {
	c.mu.Lock()
	c.obsReg = reg
	c.resumes = reg.Counter("remote.resume")
	c.mu.Unlock()
}

// SetHelloTimeout bounds how long an accepted connection may take to
// complete its handshake.
func (c *Controller) SetHelloTimeout(d time.Duration) {
	c.mu.Lock()
	c.helloTimeout = d
	c.mu.Unlock()
}

// Addr returns the listening address.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// Close stops accepting agents.
func (c *Controller) Close() error { return c.ln.Close() }

// Accept waits for one NEW agent session and returns a prober driving it.
// Reconnections of known agents are routed to their existing probers and
// do not surface here.
func (c *Controller) Accept() (*RemoteProber, error) {
	select {
	case r := <-c.acceptC:
		return r.p, r.err
	case <-c.done:
		// Drain a session that was delivered just before shutdown.
		select {
		case r := <-c.acceptC:
			return r.p, r.err
		default:
		}
		return nil, fmt.Errorf("scamper: controller closed")
	}
}

func (c *Controller) dispatch() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			close(c.done)
			return
		}
		go c.handshake(conn)
	}
}

func (c *Controller) handshake(conn net.Conn) {
	c.mu.Lock()
	ht := c.helloTimeout
	c.mu.Unlock()
	conn.SetReadDeadline(time.Now().Add(ht))
	seq, body, err := readMsg(conn)
	if err == nil && seq != 0 {
		err = fmt.Errorf("scamper: bad hello")
	}
	var name string
	var sessionID uint64
	var caps byte
	if err == nil {
		name, _, sessionID, _, err = parseHello(body)
		if err == nil {
			caps = parseHelloCaps(body)
		}
	}
	if err != nil {
		// A garbled or dropped hello only condemns this connection: the
		// agent redials and tries again, so nothing surfaces via Accept.
		conn.Close()
		c.mu.Lock()
		reg := c.obsReg
		c.mu.Unlock()
		reg.Inc("remote.hello_failed")
		return
	}
	conn.SetReadDeadline(time.Time{})
	ack := make([]byte, 9)
	ack[0] = msgHelloAck
	binary.BigEndian.PutUint64(ack[1:9], sessionID)
	if err := writeMsg(conn, 0, ack); err != nil {
		conn.Close()
		return
	}

	// Route by VP name, not session id: a lost helloAck makes the agent
	// redial believing it has no session, and name routing still finds it.
	c.mu.Lock()
	p, resuming := c.sessions[name]
	if resuming && p.closed.Load() {
		delete(c.sessions, name)
		resuming = false
	}
	if !resuming {
		p = newRemoteProber(name, c, c.obsReg)
		c.sessions[name] = p
	}
	p.caps.Store(uint32(caps))
	resumeCtr := c.resumes
	c.mu.Unlock()

	p.attach(conn)
	if resuming {
		resumeCtr.Add(1)
	} else {
		c.deliver(acceptResult{p: p})
	}
}

func (c *Controller) deliver(r acceptResult) {
	select {
	case <-c.done:
		// Controller already shut down; nobody will Accept this session.
		if r.p != nil {
			r.p.Close()
		}
		return
	default:
	}
	select {
	case c.acceptC <- r:
	default:
		if r.p != nil {
			r.p.Close()
		}
	}
}

func (c *Controller) endSession(name string) {
	c.mu.Lock()
	if c.sessions != nil {
		delete(c.sessions, name)
	}
	c.mu.Unlock()
}

// ---------------------------------------------------------------------------
// RemoteProber (controller's handle on one agent session)

// Hardening tunes the prober's fault-recovery behavior.
type Hardening struct {
	// FrameTimeout bounds each frame write and each response wait.
	// Default 5s.
	FrameTimeout time.Duration
	// RetryBudget is the number of ADDITIONAL attempts after the first
	// send of a command. Default 8; Disabled means zero (one attempt,
	// no retries).
	RetryBudget int
	// BackoffBase/BackoffMax shape the exponential backoff between
	// retries. Defaults 5ms / 250ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ResumeWait bounds how long a command waits for a reconnecting
	// agent before declaring the session lost. Default 10s.
	ResumeWait time.Duration
}

func (h Hardening) withDefaults() Hardening {
	if h.FrameTimeout == 0 {
		h.FrameTimeout = 5 * time.Second
	}
	switch h.RetryBudget {
	case Disabled:
		h.RetryBudget = 0
	case 0:
		h.RetryBudget = 8
	}
	if h.BackoffBase == 0 {
		h.BackoffBase = 5 * time.Millisecond
	}
	if h.BackoffMax == 0 {
		h.BackoffMax = 250 * time.Millisecond
	}
	if h.ResumeWait == 0 {
		h.ResumeWait = 10 * time.Second
	}
	return h
}

// RemoteProber drives a remote agent over its callback connection(s).
// It is safe for concurrent use; commands are serialized, retried with
// bounded exponential backoff, and survive agent reconnects.
type RemoteProber struct {
	name   string
	ctrl   *Controller
	reconn chan net.Conn
	closed atomic.Bool
	caps   atomic.Uint32 // capability bits from the agent's latest hello

	opMu    sync.Mutex // serializes commands; guards conn, nextSeq, hard
	conn    net.Conn
	nextSeq uint32
	hard    Hardening

	mu       sync.Mutex // guards err, byte counts
	bytesOut int64
	bytesIn  int64
	err      error

	retryWrite   *obs.Counter
	retryRead    *obs.Counter
	retryCorrupt *obs.Counter
	backoffNs    *obs.Counter
	sessionLost  *obs.Counter
}

var _ Prober = (*RemoteProber)(nil)

func newRemoteProber(name string, ctrl *Controller, reg *obs.Registry) *RemoteProber {
	return &RemoteProber{
		name:         name,
		ctrl:         ctrl,
		reconn:       make(chan net.Conn, 1),
		nextSeq:      1,
		hard:         Hardening{}.withDefaults(),
		retryWrite:   reg.Counter("remote.retry.write"),
		retryRead:    reg.Counter("remote.retry.read"),
		retryCorrupt: reg.Counter("remote.retry.corrupt"),
		backoffNs:    reg.Counter("remote.retry.backoff_ns"),
		sessionLost:  reg.Counter("remote.session_lost"),
	}
}

// SetHardening replaces the recovery tuning. Call before issuing commands.
func (p *RemoteProber) SetHardening(h Hardening) {
	p.opMu.Lock()
	p.hard = h.withDefaults()
	p.opMu.Unlock()
}

// attach hands a (re)connection to the prober. A newer connection replaces
// any pending one: the agent only redials after abandoning the old conn.
func (p *RemoteProber) attach(conn net.Conn) {
	if p.closed.Load() {
		conn.Close()
		return
	}
	for {
		select {
		case p.reconn <- conn:
			return
		default:
		}
		select {
		case old := <-p.reconn:
			old.Close()
		default:
		}
	}
}

// Name returns the agent's vantage point name.
func (p *RemoteProber) Name() string { return p.name }

// BytesTransferred reports protocol traffic (out, in).
func (p *RemoteProber) BytesTransferred() (out, in int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytesOut, p.bytesIn
}

// Err returns the first permanent session error, if any. It never blocks
// on an in-flight command.
func (p *RemoteProber) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *RemoteProber) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.sessionLost.Add(1)
}

// Close ends the session: a best-effort bye, then the connection.
func (p *RemoteProber) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	p.opMu.Lock()
	defer p.opMu.Unlock()
	if p.conn == nil {
		select {
		case c := <-p.reconn:
			p.conn = c
		default:
		}
	}
	if p.conn != nil {
		p.conn.SetWriteDeadline(time.Now().Add(time.Second))
		_ = writeMsg(p.conn, p.nextSeq, []byte{msgBye})
		p.conn.Close()
		p.conn = nil
	}
	if p.ctrl != nil {
		p.ctrl.endSession(p.name)
	}
	return nil
}

// dropConn abandons the current connection after a transport fault.
func (p *RemoteProber) dropConn() {
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}

// awaitConn waits for the agent to (re)connect.
func (p *RemoteProber) awaitConn(wait time.Duration) bool {
	select {
	case c := <-p.reconn:
		p.conn = c
		return true
	default:
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case c := <-p.reconn:
		p.conn = c
		return true
	case <-timer.C:
		return false
	}
}

// roundTrip sends one command and reads its response, retrying across
// lost/corrupt frames and agent reconnects. Returns nil once the session
// is permanently lost (Err() reports why).
func (p *RemoteProber) roundTrip(body []byte, wantType byte) []byte {
	p.opMu.Lock()
	defer p.opMu.Unlock()
	if p.closed.Load() || p.Err() != nil {
		return nil
	}
	h := p.hard
	seq := p.nextSeq
	p.nextSeq++
	for attempt := 0; attempt <= h.RetryBudget; attempt++ {
		if attempt > 0 {
			d := h.BackoffBase << uint(attempt-1)
			if d > h.BackoffMax {
				d = h.BackoffMax
			}
			p.backoffNs.Add(int64(d))
			time.Sleep(d)
		}
		if p.conn == nil && !p.awaitConn(h.ResumeWait) {
			p.fail(fmt.Errorf("scamper: agent %s did not resume within %v", p.name, h.ResumeWait))
			return nil
		}
		// The agent may have reconnected behind our back (e.g. it saw a
		// corrupt frame and redialed); prefer the fresh connection.
		select {
		case c := <-p.reconn:
			p.dropConn()
			p.conn = c
		default:
		}
		p.conn.SetWriteDeadline(time.Now().Add(h.FrameTimeout))
		if err := writeMsg(p.conn, seq, body); err != nil {
			p.retryWrite.Add(1)
			p.dropConn()
			continue
		}
		p.noteSent(len(body))
		rsp, err := p.awaitRsp(seq, wantType, h.FrameTimeout)
		if err == nil {
			p.noteRecv(len(rsp))
			return rsp
		}
		var nerr net.Error
		switch {
		case errors.Is(err, errCorruptFrame):
			// Framing survived (only payload bytes were damaged), so the
			// stream is still usable: resend on the same connection.
			p.retryCorrupt.Add(1)
		case errors.As(err, &nerr) && nerr.Timeout():
			// Response lost in transit; the connection itself is fine.
			p.retryRead.Add(1)
		default:
			p.retryRead.Add(1)
			p.dropConn()
		}
	}
	p.fail(fmt.Errorf("scamper: retry budget exhausted after %d attempts", h.RetryBudget+1))
	return nil
}

// awaitRsp reads frames until the response for seq arrives, skipping stale
// duplicates from earlier retries.
func (p *RemoteProber) awaitRsp(seq uint32, wantType byte, timeout time.Duration) ([]byte, error) {
	deadline := time.Now().Add(timeout)
	for skips := 0; skips < 64; skips++ {
		p.conn.SetReadDeadline(deadline)
		got, rsp, err := readMsg(p.conn)
		if err != nil {
			return nil, err
		}
		if got < seq {
			continue // duplicate of an already-consumed response
		}
		if got != seq || rsp[0] != wantType {
			return nil, errCorruptFrame
		}
		return rsp, nil
	}
	return nil, errCorruptFrame
}

func (p *RemoteProber) noteSent(n int) {
	p.mu.Lock()
	p.bytesOut += int64(n + envelope + 4)
	p.mu.Unlock()
}

func (p *RemoteProber) noteRecv(n int) {
	p.mu.Lock()
	p.bytesIn += int64(n + envelope + 4)
	p.mu.Unlock()
}

// Trace runs a traceroute on the agent.
func (p *RemoteProber) Trace(dst netx.Addr, stopSet map[netx.Addr]bool) probe.TraceResult {
	req := make([]byte, 7, 7+4*len(stopSet))
	req[0] = msgTraceReq
	binary.BigEndian.PutUint32(req[1:5], uint32(dst))
	binary.BigEndian.PutUint16(req[5:7], uint16(len(stopSet)))
	for a := range stopSet {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(a))
		req = append(req, b[:]...)
	}
	rsp := p.roundTrip(req, msgTraceRsp)
	res := probe.TraceResult{VP: p.name, Dst: dst}
	if rsp == nil || len(rsp) < 5 {
		return res
	}
	res.Reached = rsp[1] == 1
	res.Stopped = rsp[2] == 1
	n := int(binary.BigEndian.Uint16(rsp[3:5]))
	for i := 0; i < n && 5+16*(i+1) <= len(rsp); i++ {
		h := rsp[5+16*i:]
		res.Hops = append(res.Hops, probe.Hop{
			TTL:  int(h[0]),
			Type: probe.HopType(h[1]),
			Addr: netx.Addr(binary.BigEndian.Uint32(h[2:6])),
			IPID: binary.BigEndian.Uint16(h[6:8]),
			RTT:  time.Duration(binary.BigEndian.Uint64(h[8:16])),
		})
	}
	return res
}

// Probe sends one alias-resolution probe via the agent.
func (p *RemoteProber) Probe(target netx.Addr, m probe.Method) probe.Response {
	req := make([]byte, 6)
	req[0] = msgProbeReq
	binary.BigEndian.PutUint32(req[1:5], uint32(target))
	req[5] = byte(m)
	rsp := p.roundTrip(req, msgProbeRsp)
	if rsp == nil || len(rsp) < 24 {
		return probe.Response{}
	}
	return probe.Response{
		OK:   rsp[1] == 1,
		From: netx.Addr(binary.BigEndian.Uint32(rsp[2:6])),
		IPID: binary.BigEndian.Uint16(rsp[6:8]),
		When: time.Duration(binary.BigEndian.Uint64(rsp[8:16])),
		RTT:  time.Duration(binary.BigEndian.Uint64(rsp[16:24])),
	}
}

// Advance moves the agent's measurement clock.
func (p *RemoteProber) Advance(d time.Duration) {
	req := make([]byte, 9)
	req[0] = msgAdvance
	binary.BigEndian.PutUint64(req[1:9], uint64(d))
	p.roundTrip(req, msgAdvanced)
}

// Clock reads the agent's simulated measurement clock, so the driver can
// report SimDuration for remote runs too.
func (p *RemoteProber) Clock() (time.Duration, error) {
	rsp := p.roundTrip([]byte{msgClock}, msgClockRsp)
	if rsp == nil || len(rsp) < 9 {
		return 0, p.Err()
	}
	return time.Duration(binary.BigEndian.Uint64(rsp[1:9])), nil
}

// PullSpans retrieves the agent's session span records so the controller
// can graft them into the run's span tree. An agent that did not
// advertise helloCapSpans (or whose session is already lost) yields
// (nil, nil)/(nil, Err): span retrieval is best-effort telemetry and
// must never fail a run that produced a map.
func (p *RemoteProber) PullSpans() ([]obs.SpanRecord, error) {
	if p.caps.Load()&helloCapSpans == 0 {
		return nil, nil
	}
	rsp := p.roundTrip([]byte{msgSpanPull}, msgSpanRsp)
	if rsp == nil {
		return nil, p.Err()
	}
	return obs.ReadSpanJSONL(bytes.NewReader(rsp[1:]))
}

// HasSignatures reports whether the agent advertised helloCapSig.
func (p *RemoteProber) HasSignatures() bool {
	return p.caps.Load()&helloCapSig != 0
}

// Signed returns a SignatureProber view of the session, or nil if the
// agent did not advertise helloCapSig. The capability gate matters: an
// unconditional PathSignature method returning 0 on old agents would
// *falsely match* a transcript recorded with a 0 signature, so the
// signature surface only exists when the agent actually computes them.
func (p *RemoteProber) Signed() SignatureProber {
	if !p.HasSignatures() {
		return nil
	}
	return remoteSigProber{p}
}

// remoteSigProber is the capability-gated SignatureProber view of a
// RemoteProber.
type remoteSigProber struct {
	*RemoteProber
}

// PathSignature asks the agent to fingerprint its current forwarding path
// toward dst. A lost session yields 0, which can never equal a signature
// the agent attested while healthy (FNV of a nonempty walk), so replay
// degrades to a live re-walk instead of serving stale hops.
func (p remoteSigProber) PathSignature(dst netx.Addr) uint64 {
	req := make([]byte, 5)
	req[0] = msgSigReq
	binary.BigEndian.PutUint32(req[1:5], uint32(dst))
	rsp := p.roundTrip(req, msgSigRsp)
	if rsp == nil || len(rsp) < 9 {
		return 0
	}
	return binary.BigEndian.Uint64(rsp[1:9])
}
