package scamper

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"bdrmap/internal/bgp"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{msgProbeReq, 1, 2, 3, 4, 0}
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %v != %v", got, payload)
	}
}

// TestFrameRoundTripLarge exercises the chunked-read path: frames larger
// than frameChunk (a trace request whose stop set holds 65535 addresses is
// ~256KiB) must round-trip, not panic at the first chunk boundary.
func TestFrameRoundTripLarge(t *testing.T) {
	for _, n := range []int{frameChunk, frameChunk + 100, 4*frameChunk + 9, maxFrame} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	// Zero-length frame.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := readFrame(&buf); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Oversized frame.
	buf.Reset()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	buf.Write(hdr[:])
	if _, err := readFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	// Truncated payload.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 10)
	buf.Write(hdr[:])
	buf.Write([]byte{1, 2, 3})
	if _, err := readFrame(&buf); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated payload: err = %v", err)
	}
	// Hostile length prefix just under maxFrame with a trickle of data
	// must not allocate the full frame up front; it should fail with
	// ErrUnexpectedEOF once the stream dries up.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], maxFrame)
	buf.Write(hdr[:])
	buf.Write(make([]byte, 100))
	if _, err := readFrame(&buf); err != io.ErrUnexpectedEOF {
		t.Errorf("hostile length prefix: err = %v", err)
	}
}

func TestMsgEnvelope(t *testing.T) {
	var buf bytes.Buffer
	body := []byte{msgTraceRsp, 1, 0, 0, 0}
	if err := writeMsg(&buf, 42, body); err != nil {
		t.Fatal(err)
	}
	seq, got, err := readMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || !bytes.Equal(got, body) {
		t.Fatalf("envelope round trip: seq=%d body=%v", seq, got)
	}

	// A flipped payload byte must be rejected as corrupt.
	buf.Reset()
	writeMsg(&buf, 7, body)
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff
	if _, _, err := readMsg(bytes.NewReader(raw)); err != errCorruptFrame {
		t.Fatalf("corrupt payload: err = %v", err)
	}

	// A flipped seq byte must also fail the checksum.
	buf.Reset()
	writeMsg(&buf, 7, body)
	raw = buf.Bytes()
	raw[5] ^= 0xff
	if _, _, err := readMsg(bytes.NewReader(raw)); err != errCorruptFrame {
		t.Fatalf("corrupt seq: err = %v", err)
	}

	// An envelope too short to hold a message type is corrupt, not a panic.
	buf.Reset()
	writeFrame(&buf, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	if _, _, err := readMsg(&buf); err != errCorruptFrame {
		t.Fatalf("short envelope: err = %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	b := buildHello("vp-atlanta", true, 0xdeadbeef, 99)
	name, resume, sid, last, err := parseHello(b)
	if err != nil {
		t.Fatal(err)
	}
	if name != "vp-atlanta" || !resume || sid != 0xdeadbeef || last != 99 {
		t.Fatalf("parsed %q %v %x %d", name, resume, sid, last)
	}
	for _, bad := range [][]byte{
		nil,
		{msgHello},
		{msgHello, 5, 'a', 'b'},          // name longer than body
		{msgProbeReq, 1, 'a'},            // wrong type
		buildHello("x", false, 0, 0)[:5], // truncated tail
	} {
		if _, _, _, _, err := parseHello(bad); err == nil {
			t.Errorf("parseHello(%v) accepted", bad)
		}
	}
}

func agentWorld(t *testing.T) *Agent {
	t.Helper()
	n := topo.Generate(topo.TinyProfile(), 1)
	return &Agent{E: probe.New(n, bgp.NewTable(n)), VP: n.VPs[0]}
}

// serveConnPair runs the agent on one end of a pipe and returns the test's
// end after completing the hello/helloAck handshake.
func serveConnPair(t *testing.T, a *Agent) (net.Conn, chan error) {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- a.ServeConn(server) }()
	client.SetDeadline(time.Now().Add(5 * time.Second))
	seq, hello, err := readMsg(client)
	if err != nil || seq != 0 || hello[0] != msgHello {
		t.Fatalf("bad hello: %v %v", hello, err)
	}
	if _, _, _, _, err := parseHello(hello); err != nil {
		t.Fatalf("unparsable hello: %v", err)
	}
	if err := writeMsg(client, 0, []byte{msgHelloAck, 0, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	client.SetDeadline(time.Time{})
	return client, done
}

func TestAgentRejectsUnknownMessage(t *testing.T) {
	a := agentWorld(t)
	client, done := serveConnPair(t, a)
	defer client.Close()
	if err := writeMsg(client, 1, []byte{0x7f}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("agent accepted unknown message type")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("agent hung on unknown message")
	}
}

func TestAgentRejectsShortRequests(t *testing.T) {
	for _, req := range [][]byte{
		{msgProbeReq, 1},                // short probe
		{msgTraceReq, 1, 2},             // short trace
		{msgAdvance, 1, 2, 3},           // short advance
		{msgTraceReq, 0, 0, 0, 1, 0, 9}, // stop-set count larger than payload
	} {
		a := agentWorld(t)
		client, done := serveConnPair(t, a)
		if err := writeMsg(client, 1, req); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("agent accepted malformed request %v", req)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("agent hung on %v", req)
		}
		client.Close()
	}
}

func TestAgentDropsCorruptFrame(t *testing.T) {
	a := agentWorld(t)
	client, done := serveConnPair(t, a)
	defer client.Close()
	// Hand-build a frame whose checksum does not verify.
	payload := make([]byte, envelope+1)
	payload[envelope] = msgBye
	binary.BigEndian.PutUint32(payload[0:4], 0xbad)
	if err := writeFrame(client, payload); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("agent trusted a corrupt frame")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("agent hung on corrupt frame")
	}
}

func TestAgentReplaysDuplicateSeq(t *testing.T) {
	a := agentWorld(t)
	client, done := serveConnPair(t, a)
	defer client.Close()
	defer func() { <-done }()

	req := make([]byte, 9)
	req[0] = msgAdvance
	binary.BigEndian.PutUint64(req[1:9], uint64(time.Second))
	client.SetDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < 3; i++ { // original + two duplicates
		if err := writeMsg(client, 1, req); err != nil {
			t.Fatal(err)
		}
		seq, rsp, err := readMsg(client)
		if err != nil || seq != 1 || rsp[0] != msgAdvanced {
			t.Fatalf("attempt %d: seq=%d rsp=%v err=%v", i, seq, rsp, err)
		}
	}
	// The engine must have advanced exactly once despite three requests.
	if got := a.E.Now(); got != time.Second {
		t.Fatalf("duplicate seq re-executed: clock = %v", got)
	}
	if execs := a.CountExecs(); execs[1] != 1 {
		t.Fatalf("execs[1] = %d, want 1", execs[1])
	}
	client.Close()
}

func TestAgentCleanShutdownOnBye(t *testing.T) {
	a := agentWorld(t)
	client, done := serveConnPair(t, a)
	defer client.Close()
	if err := writeMsg(client, 1, []byte{msgBye}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("bye produced error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("agent hung on bye")
	}
}

func TestAgentCleanShutdownOnEOF(t *testing.T) {
	a := agentWorld(t)
	client, done := serveConnPair(t, a)
	client.Close()
	select {
	case err := <-done:
		if err != nil && err != io.EOF {
			t.Fatalf("EOF produced unexpected error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("agent hung on EOF")
	}
}

// TestRetryDefaultsHonorDisabled pins the zero-vs-default distinction for
// the retry knobs: the zero value means "use the default", Disabled means
// an explicit zero (no retries / no redials).
func TestRetryDefaultsHonorDisabled(t *testing.T) {
	if got := (Hardening{}).withDefaults().RetryBudget; got != 8 {
		t.Errorf("zero RetryBudget = %d, want default 8", got)
	}
	if got := (Hardening{RetryBudget: Disabled}).withDefaults().RetryBudget; got != 0 {
		t.Errorf("Disabled RetryBudget = %d, want 0", got)
	}
	if got := (DialOptions{}).withDefaults().MaxRedials; got != 8 {
		t.Errorf("zero MaxRedials = %d, want default 8", got)
	}
	if got := (DialOptions{MaxRedials: Disabled}).withDefaults().MaxRedials; got != 0 {
		t.Errorf("Disabled MaxRedials = %d, want 0", got)
	}
}

// TestControllerCloseDuringHandshake races Close against in-flight
// handshakes: a session finishing its hello just as the dispatcher shuts
// down must be discarded cleanly, never panic delivering to a closed
// channel (run under -race in the chaos CI job).
func TestControllerCloseDuringHandshake(t *testing.T) {
	for i := 0; i < 25; i++ {
		ctrl, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctrl.SetObs(obs.New())
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				conn, err := net.Dial("tcp", ctrl.Addr())
				if err != nil {
					return
				}
				defer conn.Close()
				writeMsg(conn, 0, buildHello(fmt.Sprintf("vp-%d", j), false, 0, 0))
				conn.SetReadDeadline(time.Now().Add(time.Second))
				readMsg(conn)
			}(j)
		}
		ctrl.Close()
		wg.Wait()
	}
}

func TestControllerRejectsBadHello(t *testing.T) {
	ctrl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	reg := obs.New()
	ctrl.SetObs(reg)
	conn, err := net.Dial("tcp", ctrl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	writeMsg(conn, 0, []byte{msgProbeReq, 0, 0, 0, 0, 0}) // not a hello
	// The controller must close the connection without creating a
	// session — a failed handshake never surfaces through Accept,
	// because under fault injection the agent simply redials.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := readMsg(conn); err == nil {
		t.Fatal("controller answered a session without hello")
	}
	deadline := time.Now().Add(2 * time.Second)
	for reg.Snapshot().Counter("remote.hello_failed") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hello failure not counted")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestControllerResumesSession(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 2)
	e := probe.New(n, bgp.NewTable(n))
	ctrl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	agent := &Agent{E: e, VP: n.VPs[0]}
	dialed := 0
	dial := func(addr string) (net.Conn, error) {
		dialed++
		return net.Dial("tcp", addr)
	}
	// Cut the first connection after the 3rd agent write (hello + two
	// responses), forcing a redial mid-run.
	writes := 0
	wrap := func(c net.Conn) net.Conn {
		return &cutAfterConn{Conn: c, when: func() bool { writes++; return writes == 3 }}
	}
	done := make(chan error, 1)
	go func() {
		done <- agent.DialRetry(ctrl.Addr(), DialOptions{Dial: dial, Wrap: wrap})
	}()

	rp, err := ctrl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	rp.SetHardening(Hardening{FrameTimeout: time.Second, RetryBudget: 6,
		BackoffBase: time.Millisecond, BackoffMax: 8 * time.Millisecond, ResumeWait: 5 * time.Second})

	tab := bgp.NewTable(n)
	dst := tab.Prefixes()[0].First() + 1
	var traces []probe.TraceResult
	for i := 0; i < 4; i++ {
		traces = append(traces, rp.Trace(dst, nil))
	}
	if err := rp.Err(); err != nil {
		t.Fatalf("session lost despite resume: %v", err)
	}
	for i, tr := range traces {
		if len(tr.Hops) == 0 {
			t.Fatalf("trace %d empty after resume", i)
		}
	}
	if dialed < 2 {
		t.Fatalf("agent dialed %d times; cut should force a redial", dialed)
	}
	rp.Close()
	if err := <-done; err != nil {
		t.Fatalf("agent exited with error: %v", err)
	}
}

// cutAfterConn closes itself right before the write on which when() fires.
type cutAfterConn struct {
	net.Conn
	when func() bool
}

func (c *cutAfterConn) Write(b []byte) (int, error) {
	if c.when() {
		c.Conn.Close()
		return 0, io.ErrClosedPipe
	}
	return c.Conn.Write(b)
}

func TestRemoteProberConcurrentUse(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 2)
	e := probe.New(n, bgp.NewTable(n))
	ctrl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	agent := &Agent{E: e, VP: n.VPs[0]}
	go agent.Dial(ctrl.Addr())
	rp, err := ctrl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()

	// Hammer the session from several goroutines; the prober must
	// serialize commands without interleaving frames.
	tab := bgp.NewTable(n)
	prefixes := tab.Prefixes()
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 20; i++ {
				p := prefixes[(g*20+i)%len(prefixes)]
				rp.Trace(p.First()+1, nil)
				rp.Probe(p.First()+1, probe.MethodICMPEcho)
			}
			errc <- rp.Err()
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatalf("transport error under concurrency: %v", err)
		}
	}
}
