package scamper

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"bdrmap/internal/bgp"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{msgProbeReq, 1, 2, 3, 4, 0}
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %v != %v", got, payload)
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	// Zero-length frame.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := readFrame(&buf); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Oversized frame.
	buf.Reset()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	buf.Write(hdr[:])
	if _, err := readFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	// Truncated payload.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 10)
	buf.Write(hdr[:])
	buf.Write([]byte{1, 2, 3})
	if _, err := readFrame(&buf); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated payload: err = %v", err)
	}
}

func agentWorld(t *testing.T) *Agent {
	t.Helper()
	n := topo.Generate(topo.TinyProfile(), 1)
	return &Agent{E: probe.New(n, bgp.NewTable(n)), VP: n.VPs[0]}
}

// serveConnPair runs the agent on one end of a pipe and returns the test's
// end after consuming the hello.
func serveConnPair(t *testing.T, a *Agent) (net.Conn, chan error) {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- a.ServeConn(server) }()
	hello, err := readFrame(client)
	if err != nil || hello[0] != msgHello {
		t.Fatalf("bad hello: %v %v", hello, err)
	}
	return client, done
}

func TestAgentRejectsUnknownMessage(t *testing.T) {
	a := agentWorld(t)
	client, done := serveConnPair(t, a)
	defer client.Close()
	if err := writeFrame(client, []byte{0x7f}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("agent accepted unknown message type")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("agent hung on unknown message")
	}
}

func TestAgentRejectsShortRequests(t *testing.T) {
	for _, req := range [][]byte{
		{msgProbeReq, 1},                // short probe
		{msgTraceReq, 1, 2},             // short trace
		{msgAdvance, 1, 2, 3},           // short advance
		{msgTraceReq, 0, 0, 0, 1, 0, 9}, // stop-set count larger than payload
	} {
		a := agentWorld(t)
		client, done := serveConnPair(t, a)
		if err := writeFrame(client, req); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("agent accepted malformed request %v", req)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("agent hung on %v", req)
		}
		client.Close()
	}
}

func TestAgentCleanShutdownOnBye(t *testing.T) {
	a := agentWorld(t)
	client, done := serveConnPair(t, a)
	defer client.Close()
	if err := writeFrame(client, []byte{msgBye}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("bye produced error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("agent hung on bye")
	}
}

func TestAgentCleanShutdownOnEOF(t *testing.T) {
	a := agentWorld(t)
	client, done := serveConnPair(t, a)
	client.Close()
	select {
	case err := <-done:
		if err != nil && err != io.EOF {
			t.Fatalf("EOF produced unexpected error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("agent hung on EOF")
	}
}

func TestControllerRejectsBadHello(t *testing.T) {
	ctrl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	go func() {
		conn, err := net.Dial("tcp", ctrl.Addr())
		if err != nil {
			return
		}
		writeFrame(conn, []byte{msgProbeReq, 0, 0, 0, 0, 0}) // not a hello
		conn.Close()
	}()
	if _, err := ctrl.Accept(); err == nil {
		t.Fatal("controller accepted a session without hello")
	}
}

func TestRemoteProberConcurrentUse(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 2)
	e := probe.New(n, bgp.NewTable(n))
	ctrl, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	agent := &Agent{E: e, VP: n.VPs[0]}
	go agent.Dial(ctrl.Addr())
	rp, err := ctrl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer rp.Close()

	// Hammer the session from several goroutines; the prober must
	// serialize commands without interleaving frames.
	tab := bgp.NewTable(n)
	prefixes := tab.Prefixes()
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 20; i++ {
				p := prefixes[(g*20+i)%len(prefixes)]
				rp.Trace(p.First()+1, nil)
				rp.Probe(p.First()+1, probe.MethodICMPEcho)
			}
			errc <- rp.Err()
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatalf("transport error under concurrency: %v", err)
		}
	}
}
