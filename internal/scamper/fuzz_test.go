package scamper

// Fuzz targets for the remote-control wire format. The decoders sit on the
// trust boundary of §5.8 — the central system reads frames produced by
// agents on unreliable consumer links — so they must tolerate arbitrary
// bytes without panicking, over-allocating, or mis-framing.
//
// Run the full fuzzers locally with e.g.:
//
//	go test ./internal/scamper -run=NONE -fuzz=FuzzReadFrame -fuzztime=60s
//
// Seed corpora live in testdata/fuzz/<FuzzName>/.

import (
	"bytes"
	"testing"
)

func FuzzReadFrame(f *testing.F) {
	// A well-formed message frame.
	var good bytes.Buffer
	_ = writeMsg(&good, 7, []byte{msgTraceReq, 1, 2, 3, 4})
	f.Add(good.Bytes())
	// A hostile length prefix claiming the 1MiB maximum with no body: the
	// chunked reader must fail on truncation instead of allocating it all.
	hostile := []byte{0x00, 0x10, 0x00, 0x00, 0xde, 0xad}
	f.Add(hostile)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})             // zero length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // over-limit length

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) == 0 || len(payload) > maxFrame {
			t.Fatalf("readFrame accepted %d-byte payload outside (0, maxFrame]", len(payload))
		}
		// Whatever decoded must survive a re-encode round trip.
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := readFrame(&buf)
		if err != nil || !bytes.Equal(back, payload) {
			t.Fatalf("round trip mismatch: %v (err %v)", back, err)
		}
		// readMsg on the same frame must never panic; any error is fine.
		_, _, _ = readMsg(bytes.NewReader(data))
	})
}

func FuzzMsgCodec(f *testing.F) {
	f.Add(uint32(0), []byte{msgHello})
	f.Add(uint32(1), []byte{msgTraceRsp, 0, 0})
	f.Add(uint32(0xffffffff), []byte{msgBye})
	f.Fuzz(func(t *testing.T, seq uint32, body []byte) {
		if len(body) == 0 || len(body) > maxFrame-envelope {
			return
		}
		var buf bytes.Buffer
		if err := writeMsg(&buf, seq, body); err != nil {
			t.Fatalf("writeMsg: %v", err)
		}
		raw := append([]byte(nil), buf.Bytes()...)
		gotSeq, gotBody, err := readMsg(&buf)
		if err != nil {
			t.Fatalf("readMsg rejected its own encoding: %v", err)
		}
		if gotSeq != seq || !bytes.Equal(gotBody, body) {
			t.Fatalf("round trip: seq %d body %v != seq %d body %v", gotSeq, gotBody, seq, body)
		}
		// A single flipped payload byte must never verify — CRC32 detects
		// all 1-bit errors. (Flipping a length-prefix byte is a framing
		// error, not a checksum error, so only bytes past the 4-byte
		// prefix are interesting here.)
		idx := 4 + int(seq)%(len(raw)-4)
		raw[idx] ^= 0x40
		if _, _, err := readMsg(bytes.NewReader(raw)); err == nil {
			t.Fatalf("flipped byte %d still verified", idx)
		}
	})
}

func FuzzParseHello(f *testing.F) {
	f.Add(buildHello("vp01.sea", false, sessionIDFor("vp01.sea"), 0))
	f.Add(buildHello("x", true, ^uint64(0), 0xffffffff))
	f.Add([]byte{msgHello, 0})
	f.Add([]byte{msgHello, 255, 'a'})
	f.Fuzz(func(t *testing.T, body []byte) {
		name, resume, sessionID, lastSeq, err := parseHello(body)
		if err != nil {
			return
		}
		if name == "" {
			t.Fatal("parseHello accepted an empty agent name")
		}
		// Rebuild from the parsed fields and re-parse: the handshake must
		// agree with itself or a resumed session could be misrouted.
		name2, resume2, sessionID2, lastSeq2, err := parseHello(buildHello(name, resume, sessionID, lastSeq))
		if err != nil {
			t.Fatalf("rebuilt hello rejected: %v", err)
		}
		if name2 != name || resume2 != resume || sessionID2 != sessionID || lastSeq2 != lastSeq {
			t.Fatalf("hello round trip: (%q %v %d %d) != (%q %v %d %d)",
				name2, resume2, sessionID2, lastSeq2, name, resume, sessionID, lastSeq)
		}
	})
}
