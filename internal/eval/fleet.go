package eval

import (
	"fmt"
	"time"

	"bdrmap/internal/core"
	"bdrmap/internal/faults"
	"bdrmap/internal/fleet"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/scamper"
)

// The fleet runner: RunAll and RunAllIncremental are reimplemented on the
// internal/fleet coordinator, with every vantage point as one shard.
//
// Isolation is what makes the schedule irrelevant: each shard attempt
// runs on a fresh probe.Engine (the same "pure function of (profile,
// seed, cfg, faultSpec)" construction RunVPRemote pioneered) and records
// into private trace/span fragments the coordinator merges back in VP
// order. The scenario's shared Engine is untouched — RunVP and the
// single-VP World paths keep their exact historical behavior — and
// Results/Datasets are only written after the pool drains, on the
// caller's goroutine.

// FleetVP configures one vantage point's transport for RunFleet.
type FleetVP struct {
	// Remote runs the VP as a protocol-v2 agent dialing the scenario's
	// in-process controller over loopback TCP, instead of an in-process
	// LocalProber.
	Remote bool
	// FaultSpecs injects deterministic faults into the remote session,
	// one spec per attempt: attempt k uses FaultSpecs[min(k, len-1)], so
	// {"seed=3,kill=30", ""} means "kill the session mid-shard once, then
	// let the retry run clean". Empty means a clean link on every attempt.
	FaultSpecs []string
}

// FleetOptions tunes one RunFleet invocation. The zero value runs every
// VP locally on one worker in VP order — exactly RunAll.
type FleetOptions struct {
	// Workers, Quorum, Retries, StragglerTimeout and Order are the
	// coordinator knobs; see fleet.Config.
	Workers          int
	Quorum           int
	Retries          int
	StragglerTimeout time.Duration
	Order            []int
	// VPs overrides transport per VP index; absent entries run locally.
	VPs map[int]FleetVP
	// States and Prevs carry per-VP cross-round state (indexed like
	// Net.VPs), as in RunAllIncremental. A shard's RoundState stays with
	// the shard across retries and worker reassignment.
	States []*scamper.RoundState
	Prevs  []*core.Result
	// Opts is passed to every shard's inference.
	Opts core.Options
	// OnPublish receives the quorum-time partial and the final merged
	// generations (see fleet.Config.OnPublish).
	OnPublish func(fleet.PublishEvent)
	// Gate, when set, is called at the start of every attempt of VP i —
	// a test hook for pinning straggler and quorum schedules.
	Gate func(vp int)
	// ClaimTimeout bounds the wait for a remote agent's handshake per
	// attempt (default 5s — generous against the millisecond redial
	// schedule the loopback agents use).
	ClaimTimeout time.Duration
}

// fleetRuntime is the shared remote-transport state of one RunFleet call:
// a single controller and its session router, claimed by whichever worker
// is running a remote shard.
type fleetRuntime struct {
	ctrl   *scamper.Controller
	router *scamper.Router
}

// RunFleet measures every VP through the fleet coordinator and fills
// Datasets/Results like RunAll. Already-run VPs (memoized Results) fold
// into the merge without re-measuring. The returned summary carries
// per-shard dispositions and the final merged map; err is non-nil only
// for configuration or listener failures — per-shard failures are
// reported in the summary (and leave that VP's Results slot nil).
func (s *Scenario) RunFleet(cfg scamper.Config, fo FleetOptions) (*fleet.Summary, error) {
	var rt *fleetRuntime
	for _, vp := range fo.VPs {
		if vp.Remote {
			ctrl, err := scamper.Listen("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			ctrl.SetObs(s.Obs)
			ctrl.SetHelloTimeout(time.Second)
			rt = &fleetRuntime{ctrl: ctrl, router: scamper.NewRouter(ctrl)}
			defer ctrl.Close()
			break
		}
	}

	shards := make([]fleet.Shard, len(s.Net.VPs))
	for i := range s.Net.VPs {
		i := i
		shards[i] = fleet.Shard{
			Name: s.Net.VPs[i].Name,
			Run: func(ctx fleet.RunCtx) (*fleet.Output, error) {
				if s.Results[i] != nil {
					// Memoized by an earlier RunVP/RunFleet: fold the
					// existing result, measure nothing.
					return &fleet.Output{Result: s.Results[i]}, nil
				}
				if fo.Gate != nil {
					fo.Gate(i)
				}
				if fo.VPs[i].Remote {
					return s.fleetShardRemote(i, ctx, cfg, fo, rt)
				}
				return s.fleetShardLocal(i, ctx, cfg, fo)
			},
		}
	}

	sum, err := fleet.Run(fleet.Config{
		Workers:          fo.Workers,
		Quorum:           fo.Quorum,
		Retries:          fo.Retries,
		StragglerTimeout: fo.StragglerTimeout,
		Order:            fo.Order,
		Obs:              s.Obs,
		Trace:            s.Trace,
		Spans:            s.Spans,
		SpanParent:       s.SpanRoot.ID(),
		OnPublish:        fo.OnPublish,
	}, shards)
	if err != nil {
		return nil, err
	}
	for i, out := range sum.Outputs {
		if out == nil {
			continue
		}
		if ds, ok := out.Aux.(*scamper.Dataset); ok {
			s.Datasets[i] = ds
		}
		s.Results[i] = out.Result
	}
	return sum, nil
}

// fleetFrags allocates one attempt's private trace and span fragments,
// mirroring the enabled-ness of the scenario's shared logs.
func (s *Scenario) fleetFrags() (*obs.Tracer, *obs.SpanLog) {
	var frag *obs.Tracer
	var sfrag *obs.SpanLog
	if s.Trace.Enabled() {
		frag = obs.NewTracer(0)
	}
	if s.Spans.Enabled() {
		sfrag = obs.NewSpanLog(0)
	}
	return frag, sfrag
}

// fleetShardLocal runs VP i in-process on a fresh engine. Local shards
// cannot fail: the engine is simulated and lossless, so the first attempt
// is the only one.
func (s *Scenario) fleetShardLocal(i int, ctx fleet.RunCtx, cfg scamper.Config, fo FleetOptions) (*fleet.Output, error) {
	frag, sfrag := s.fleetFrags()
	eng := probe.New(s.Net, s.Tab)
	eng.SetObs(s.Obs)
	vsp := sfrag.Begin(0, "vp", s.Net.VPs[i].Name)
	vsp.SetAttr("mode", "fleet")
	if fo.States != nil {
		cfg.State = fo.States[i]
	}
	d := &scamper.Driver{
		View:       s.View,
		Prober:     scamper.LocalProber{E: eng, VP: s.Net.VPs[i]},
		HostASNs:   s.HostASNs,
		Cfg:        cfg,
		Obs:        s.Obs,
		Trace:      frag,
		Spans:      sfrag,
		SpanParent: vsp.ID(),
	}
	ds := d.Run()
	res := s.fleetInfer(i, ds, fo, frag, sfrag, vsp, ctx.Arena)
	vsp.End()
	s.Obs.Inc("eval.vp_runs")
	return &fleet.Output{Result: res, Trace: frag, Spans: sfrag, Aux: ds}, nil
}

// fleetShardRemote runs one attempt of VP i as a remote agent through the
// run's shared controller. A session the fault schedule permanently kills
// returns its partial output *and* an error: the coordinator retries
// within budget — the next attempt's agent redial resumes against the
// shard's surviving RoundState — or keeps the salvage and marks the shard
// degraded.
func (s *Scenario) fleetShardRemote(i int, ctx fleet.RunCtx, cfg scamper.Config, fo FleetOptions, rt *fleetRuntime) (*fleet.Output, error) {
	specs := fo.VPs[i].FaultSpecs
	specStr := ""
	if len(specs) > 0 {
		k := ctx.Attempt
		if k >= len(specs) {
			k = len(specs) - 1
		}
		specStr = specs[k]
	}
	spec, err := faults.Parse(specStr)
	if err != nil {
		return nil, err
	}
	inj := faults.New(spec)

	eng := probe.New(s.Net, s.Tab)
	eng.SetObs(s.Obs)
	eng.SetFaults(inj)
	var agentSpans *obs.SpanLog
	if s.Spans.Enabled() {
		agentSpans = obs.NewSpanLog(256)
	}
	agent := &scamper.Agent{E: eng, VP: s.Net.VPs[i], Spans: agentSpans}
	agentDone := make(chan error, 1)
	go func() {
		agentDone <- agent.DialRetry(rt.ctrl.Addr(), scamper.DialOptions{
			Dial:         inj.DialFunc,
			MaxRedials:   100,
			RedialBase:   time.Millisecond,
			RedialMax:    16 * time.Millisecond,
			HelloTimeout: 250 * time.Millisecond,
		})
	}()
	drainAgent := func() {
		select {
		case <-agentDone:
		case <-time.After(10 * time.Second):
		}
	}

	claimTimeout := fo.ClaimTimeout
	if claimTimeout <= 0 {
		claimTimeout = 5 * time.Second
	}
	rp, err := rt.router.Claim(s.Net.VPs[i].Name, claimTimeout)
	if err != nil {
		drainAgent()
		return nil, fmt.Errorf("eval: fleet shard %s attempt %d: %w", s.Net.VPs[i].Name, ctx.Attempt, err)
	}
	rp.SetHardening(scamper.Hardening{
		FrameTimeout: 100 * time.Millisecond,
		RetryBudget:  12,
		BackoffBase:  time.Millisecond,
		BackoffMax:   16 * time.Millisecond,
		ResumeWait:   2 * time.Second,
	})

	// Single-worker probing keeps the command stream — and therefore the
	// fault schedule — deterministic, as in RunVPRemote.
	cfg.Workers = 1
	if fo.States != nil && fo.States[i] != nil {
		if sp := rp.Signed(); sp != nil {
			cfg.State = fo.States[i]
			frag, sfrag := s.fleetFrags()
			return s.fleetRemoteRun(i, ctx, cfg, fo, sp, rp, frag, sfrag, drainAgent)
		}
	}
	frag, sfrag := s.fleetFrags()
	return s.fleetRemoteRun(i, ctx, cfg, fo, rp, rp, frag, sfrag, drainAgent)
}

// fleetRemoteRun is the transport-independent tail of a remote attempt:
// drive, pull spans, infer, decide success.
func (s *Scenario) fleetRemoteRun(i int, ctx fleet.RunCtx, cfg scamper.Config, fo FleetOptions,
	prober scamper.Prober, rp *scamper.RemoteProber, frag *obs.Tracer, sfrag *obs.SpanLog, drainAgent func()) (*fleet.Output, error) {
	vsp := sfrag.Begin(0, "vp", s.Net.VPs[i].Name)
	vsp.SetAttr("mode", "fleet-remote")
	vsp.SetAttr("attempt", ctx.Attempt)
	d := &scamper.Driver{
		View:       s.View,
		Prober:     prober,
		HostASNs:   s.HostASNs,
		Cfg:        cfg,
		Obs:        s.Obs,
		Trace:      frag,
		Spans:      sfrag,
		SpanParent: vsp.ID(),
	}
	ds := d.Run()
	if sfrag.Enabled() {
		if recs, err := rp.PullSpans(); err == nil {
			sfrag.MergeRecords(recs, vsp.ID())
		}
	}
	sessErr := rp.Err()
	rp.Close()
	drainAgent()

	res := s.fleetInfer(i, ds, fo, frag, sfrag, vsp, ctx.Arena)
	vsp.End()
	s.Obs.Inc("eval.vp_runs_remote")
	out := &fleet.Output{Result: res, Trace: frag, Spans: sfrag, Aux: ds}
	if sessErr != nil || ds.Stats.TargetsLost > 0 {
		if sessErr == nil {
			sessErr = fmt.Errorf("%d targets lost", ds.Stats.TargetsLost)
		}
		return out, fmt.Errorf("eval: fleet shard %s attempt %d: %w", s.Net.VPs[i].Name, ctx.Attempt, sessErr)
	}
	return out, nil
}

// fleetInfer runs the shard's inference into the worker's arena, with the
// shard's previous-round result spliced in when provided.
func (s *Scenario) fleetInfer(i int, ds *scamper.Dataset, fo FleetOptions,
	frag *obs.Tracer, sfrag *obs.SpanLog, vsp *obs.OpenSpan, arena *core.Arena) *core.Result {
	var prev *core.Result
	if fo.Prevs != nil {
		prev = fo.Prevs[i]
	}
	return core.Infer(core.Input{
		Data: ds, View: s.View, Rel: s.Rel, RIR: s.RIR, IXP: s.IXP,
		HostASN: s.Net.HostASN, Siblings: s.Sibs, Opts: fo.Opts,
		Obs: s.Obs, Trace: frag, Spans: sfrag, SpanParent: vsp.ID(),
		Prev: prev, Arena: arena,
	})
}
