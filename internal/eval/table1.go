package eval

import (
	"fmt"
	"sort"
	"strings"

	"bdrmap/internal/core"
	"bdrmap/internal/topo"
)

// Table1 reproduces the paper's Table 1 for one network: per neighbor
// class (customer / peer / provider / trace-only), how many neighbor
// routers each heuristic attributed, plus BGP-coverage statistics.
type Table1 struct {
	Network string

	// ObservedBGP counts BGP-visible neighbor ASes per class.
	ObservedBGP [numClasses]int
	// ObservedBdrmap counts those with at least one inferred link.
	ObservedBdrmap [numClasses]int
	// TraceOnly counts neighbors inferred only from traceroute.
	TraceOnly int

	// Rows: per heuristic, neighbor-router counts per class.
	Rows map[core.Heuristic]*[numClasses]int
	// RouterTotals: neighbor routers per class.
	RouterTotals [numClasses]int
}

// rowOrder mirrors the paper's presentation order.
var rowOrder = []core.Heuristic{
	core.HeurMultihomed,
	core.HeurFirewall,
	core.HeurUnrouted,
	core.HeurOnenet,
	core.HeurThirdParty,
	core.HeurRelationship,
	core.HeurMissingCust,
	core.HeurHiddenPeer,
	core.HeurCount,
	core.HeurIPAS,
	core.HeurIXP,
	core.HeurSilent,
	core.HeurOtherICMP,
}

// BuildTable1 computes the table from one VP's result.
func BuildTable1(s *Scenario, res *core.Result) *Table1 {
	t := &Table1{
		Network: s.Profile.Name,
		Rows:    make(map[core.Heuristic]*[numClasses]int),
	}
	// BGP-visible neighbors per class.
	for _, nb := range s.View.NeighborsOf(s.Net.HostASN) {
		if s.hostOrg(nb) {
			continue
		}
		c := s.classify(nb)
		t.ObservedBGP[c]++
		if len(res.Neighbors[nb]) > 0 {
			t.ObservedBdrmap[c]++
		}
	}
	// Neighbor routers per heuristic. Every inferred link's far side is a
	// neighbor router (silent links count as one unobserved router).
	type farKey struct {
		far *core.RouterNode
		as  topo.ASN
	}
	counted := make(map[farKey]bool)
	for _, l := range res.Links {
		k := farKey{l.Far, l.FarAS}
		if l.Far != nil && counted[k] {
			continue
		}
		counted[k] = true
		c := s.classify(l.FarAS)
		if c == classTraceOnly && l.Far != nil {
			// count trace-only neighbors once per AS below
		}
		row := t.Rows[l.Heuristic]
		if row == nil {
			row = new([numClasses]int)
			t.Rows[l.Heuristic] = row
		}
		row[c]++
		t.RouterTotals[c]++
	}
	seenTrace := make(map[topo.ASN]bool)
	for as := range res.Neighbors {
		if s.classify(as) == classTraceOnly && !seenTrace[as] {
			seenTrace[as] = true
			t.TraceOnly++
		}
	}
	return t
}

// CoveragePct returns the fraction of BGP-observed neighbors that bdrmap
// found, across all classes.
func (t *Table1) CoveragePct() float64 {
	obs, got := 0, 0
	for c := 0; c < int(numClasses)-1; c++ {
		obs += t.ObservedBGP[c]
		got += t.ObservedBdrmap[c]
	}
	if obs == 0 {
		return 0
	}
	return 100 * float64(got) / float64(obs)
}

// Format renders the table in the paper's layout: one column per class,
// heuristic rows as percentages of that class's neighbor routers.
func (t *Table1) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %8s %8s %8s\n", t.Network, "cust", "peer", "prov", "trace")
	fmt.Fprintf(&b, "%-22s %8d %8d %8d %8s\n", "Observed in BGP",
		t.ObservedBGP[classCust], t.ObservedBGP[classPeer], t.ObservedBGP[classProv], "")
	fmt.Fprintf(&b, "%-22s %8d %8d %8d %8d\n", "Observed in bdrmap",
		t.ObservedBdrmap[classCust], t.ObservedBdrmap[classPeer], t.ObservedBdrmap[classProv], t.TraceOnly)
	fmt.Fprintf(&b, "%-22s %7.1f%%\n", "Coverage of BGP", t.CoveragePct())

	pct := func(h core.Heuristic, c neighborClass) string {
		row := t.Rows[h]
		if row == nil || row[c] == 0 || t.RouterTotals[c] == 0 {
			return ""
		}
		return fmt.Sprintf("%.1f%%", 100*float64(row[c])/float64(t.RouterTotals[c]))
	}
	names := map[core.Heuristic]string{
		core.HeurMultihomed:   "1. Multihomed to VP",
		core.HeurFirewall:     "2. Firewall",
		core.HeurUnrouted:     "3. Unrouted interface",
		core.HeurOnenet:       "4. IP-AS (onenet)",
		core.HeurThirdParty:   "5. Third party",
		core.HeurRelationship: "5. AS relationship",
		core.HeurMissingCust:  "5. Missing customer",
		core.HeurHiddenPeer:   "5. Hidden peer",
		core.HeurCount:        "6. Count",
		core.HeurIPAS:         "6. IP-AS",
		core.HeurIXP:          "6. IXP",
		core.HeurSilent:       "8. Silent neighbor",
		core.HeurOtherICMP:    "8. Other ICMP",
	}
	for _, h := range rowOrder {
		if t.Rows[h] == nil {
			continue
		}
		fmt.Fprintf(&b, "%-22s %8s %8s %8s %8s\n", names[h],
			pct(h, classCust), pct(h, classPeer), pct(h, classProv), pct(h, classTraceOnly))
	}
	fmt.Fprintf(&b, "%-22s %8d %8d %8d %8d\n", "Neighbor routers",
		t.RouterTotals[classCust], t.RouterTotals[classPeer],
		t.RouterTotals[classProv], t.RouterTotals[classTraceOnly])
	return b.String()
}

// RowPct returns the percentage of class-c neighbor routers heuristic h
// attributed (for programmatic shape checks).
func (t *Table1) RowPct(h core.Heuristic, c int) float64 {
	row := t.Rows[h]
	if row == nil || t.RouterTotals[c] == 0 {
		return 0
	}
	return 100 * float64(row[c]) / float64(t.RouterTotals[c])
}

// SortedHeuristics lists heuristics that fired, in presentation order.
func (t *Table1) SortedHeuristics() []core.Heuristic {
	var out []core.Heuristic
	for _, h := range rowOrder {
		if t.Rows[h] != nil {
			out = append(out, h)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return false }) // keep order
	return out
}
