package eval

import (
	"testing"

	"bdrmap/internal/core"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// TestTable1ExtensionScenarios runs every registered extension scenario end
// to end and asserts the structural signature its registry entry promises —
// the Table-1 row that must light up, the neighbor class that must appear —
// plus the common floor that inference accuracy survives the stress.
func TestTable1ExtensionScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("profile runs in -short mode")
	}
	specs := ExtensionScenarios()
	if len(specs) != 4 {
		t.Fatalf("registry lists %d scenarios, want 4", len(specs))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Profile.Name, func(t *testing.T) {
			s := Build(spec.Profile, 1)
			res := s.RunVP(0, scamper.Config{}, core.Options{})
			tbl := BuildTable1(s, res)
			t.Logf("stresses: %s\nexpect:   %s\n%s", spec.Stresses, spec.Expect, tbl.Format())

			v := s.Validate(res)
			if v.Accuracy() < 0.955 {
				t.Errorf("accuracy %.3f below the paper band under the %s stress", v.Accuracy(), spec.Profile.Name)
			}
			if tbl.CoveragePct() < 90 {
				t.Errorf("BGP coverage %.1f%% < 90%%", tbl.CoveragePct())
			}

			switch spec.Profile.Name {
			case "remote-peering":
				// Remote members stay hidden from BGP yet get attributed:
				// trace-only neighbors exist and the hidden-peer row fired
				// despite WAN-scale RTTs on the LAN.
				if tbl.TraceOnly == 0 {
					t.Error("no trace-only neighbors: remote members were not attributed")
				}
				if tbl.RowPct(core.HeurHiddenPeer, int(classTraceOnly)) == 0 {
					t.Error("hidden-peer row empty for trace-only neighbors")
				}
			case "hypergiant":
				hg := s.Net.Tags["hypergiant-a"]
				if hg == 0 {
					t.Fatal("hypergiant not tagged")
				}
				// One VP observes only the hot-potato-nearest of the
				// hypergiant's interconnects (the figure 15 effect); it
				// must be attributed, and to the peer class.
				if len(res.Neighbors[hg]) == 0 {
					t.Error("hypergiant has no inferred links")
				}
				if tbl.ObservedBdrmap[classPeer] == 0 {
					t.Error("no peer-class neighbors observed in bdrmap")
				}
			case "route-server":
				// Both session flavors on the same LANs: route-server
				// members are trace-only hidden peers, bilateral members
				// surface in BGP as ordinary peers beyond the PtP ones.
				if tbl.TraceOnly == 0 {
					t.Error("no trace-only neighbors: route-server members missing")
				}
				if tbl.RowPct(core.HeurHiddenPeer, int(classTraceOnly)) == 0 {
					t.Error("hidden-peer row empty for route-server members")
				}
				if got := tbl.ObservedBGP[classPeer]; got <= spec.Profile.NumPeers {
					t.Errorf("BGP-visible peers = %d, want > %d: bilateral sessions did not surface in the view",
						got, spec.Profile.NumPeers)
				}
			case "regional-vp":
				// Per-VP structure is covered by TestRegionalVPCoverageLoss;
				// here the single west VP still has to produce a sane map.
				if tbl.ObservedBdrmap[classCust] == 0 {
					t.Error("no customer neighbors observed")
				}
			default:
				t.Errorf("unregistered scenario %q: add its assertion", spec.Profile.Name)
			}
		})
	}
}

// TestRegionalVPCoverageLoss reproduces the figure 15/16 marginal-utility
// effect the regional-vp scenario exists for: west-coast-only VPs observe
// strictly fewer of the coastal CDN's interconnects than the same world
// measured with VPs spread across all regions.
func TestRegionalVPCoverageLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-VP runs in -short mode")
	}
	cdnLinks := func(placement topo.VPPlacement) int {
		prof := topo.RegionalVPProfile()
		prof.VPPlacement = placement
		// One VP per region under spread placement; the same six VPs
		// collapse into the western half under VPWestCoast — placement is
		// then the only variable between the two runs.
		prof.NumVPs = prof.NumRegions
		s := Build(prof, 1)
		s.RunAll(scamper.Config{})
		cdn := s.Net.Tags["coastal-cdn"]
		if cdn == 0 {
			t.Fatal("coastal CDN not tagged")
		}
		seen := map[string]bool{}
		for _, res := range s.Results {
			for _, l := range res.Neighbors[cdn] {
				seen[l.NearAddr.String()] = true
			}
		}
		return len(seen)
	}
	west := cdnLinks(topo.VPWestCoast)
	spread := cdnLinks(topo.VPSpreadEven)
	t.Logf("coastal CDN interconnects observed: west-only=%d spread=%d", west, spread)
	if west == 0 {
		t.Fatal("west-coast VPs observed no CDN interconnects at all")
	}
	if west >= spread {
		t.Errorf("west-only VPs observed %d CDN interconnects, spread VPs %d — expected regional placement to hide coastal links",
			west, spread)
	}
}
