// Package eval reproduces the paper's evaluation: Table 1 (heuristic usage
// and BGP coverage per network), the §5.6 ground-truth validation, Figure
// 14 (per-prefix border-router and next-hop-AS diversity across 19 VPs),
// Figure 15 (marginal utility of additional VPs), Figure 16 (geographic
// spread of observed interdomain links), the §5.3 stop-set efficiency
// numbers, and the ablations DESIGN.md calls out. Every experiment runs on
// the synthetic substrate with the full measurement + inference pipeline —
// only presentation code lives here.
package eval

import (
	"fmt"
	"time"

	"bdrmap/internal/asrel"
	"bdrmap/internal/bgp"
	"bdrmap/internal/core"
	"bdrmap/internal/faults"
	"bdrmap/internal/ixp"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/rir"
	"bdrmap/internal/scamper"
	"bdrmap/internal/sibling"
	"bdrmap/internal/topo"
)

// Scenario bundles one generated internetwork with all derived inputs and
// per-VP measurement results.
type Scenario struct {
	Profile topo.Profile
	Seed    int64

	Net      *topo.Network
	Tab      *bgp.Table
	View     *bgp.View
	Rel      *asrel.Inference
	RIR      *rir.DB
	IXP      *ixp.PrefixList
	Sibs     *sibling.Set
	Engine   *probe.Engine
	HostASNs map[topo.ASN]bool
	// Obs collects metrics from every stage of the scenario's pipeline.
	Obs *obs.Registry
	// Trace records decision-provenance events from every stage. Always
	// non-nil after Build; the event stream (and its Fingerprint) is a pure
	// function of (profile, seed, cfg) regardless of worker count.
	Trace *obs.Tracer
	// Spans records the run's hierarchical span timeline (run → vp →
	// stage → target, plus remote agent-session spans grafted in after a
	// remote run). Always non-nil after Build; like the Trace stream its
	// deterministic portion is a pure function of (profile, seed, cfg)
	// regardless of worker count or healing fault schedule.
	Spans *obs.SpanLog
	// SpanRoot is the open "run" root span every vp span parents under.
	// It stays open for the scenario's lifetime; exporters include it via
	// SpanLog.Snapshot.
	SpanRoot *obs.OpenSpan

	Datasets []*scamper.Dataset // per VP, filled by RunVP/RunAll
	Results  []*core.Result

	// hostAdj is the public view's host-AS adjacency set, built once at
	// Build time: classify is called per neighbor per report row, and a
	// linear NeighborsOf scan per call is quadratic on large profiles.
	hostAdj map[topo.ASN]bool

	// arena backs every inference this scenario runs: the router-graph
	// slabs are reset — not reallocated — between VPs and between RunAll
	// scenarios that share the Scenario value. Scenario methods are not
	// concurrency-safe, so one arena per scenario is exactly one inference
	// at a time.
	arena core.Arena
}

// Build generates the topology and derives every bdrmap input.
func Build(prof topo.Profile, seed int64) *Scenario {
	s := BuildFromNetwork(topo.Generate(prof, seed), seed)
	s.Profile = prof
	return s
}

// BuildFromNetwork derives every bdrmap input for an existing network
// (e.g. one reloaded with topo.Load). seed feeds the derived datasets'
// defect injection (WHOIS, PeeringDB).
func BuildFromNetwork(n *topo.Network, seed int64) *Scenario {
	tab := bgp.NewTable(n)
	view := bgp.Collect(tab, bgp.DefaultVantages(n))
	rel := asrel.Infer(view)
	rdb := rir.FromNetwork(n)
	pl := ixp.Merge(ixp.FromNetwork(n, seed))
	sibs := sibling.FromNetwork(n, seed)
	sibs.CurateHost(n)
	hosts := map[topo.ASN]bool{n.HostASN: true}
	for _, s := range sibs.SiblingsOf(n.HostASN) {
		hosts[s] = true
	}
	adj := make(map[topo.ASN]bool)
	for _, nb := range view.NeighborsOf(n.HostASN) {
		adj[nb] = true
	}
	reg := obs.New()
	eng := probe.New(n, tab)
	eng.SetObs(reg)
	spans := obs.NewSpanLog(0)
	root := spans.Begin(0, "run", fmt.Sprintf("host AS%d seed %d", n.HostASN, seed))
	return &Scenario{
		Seed: seed,
		Net:  n, Tab: tab, View: view, Rel: rel, RIR: rdb, IXP: pl,
		Sibs: sibs, Engine: eng, HostASNs: hosts, Obs: reg,
		Trace:    obs.NewTracer(0),
		Spans:    spans,
		SpanRoot: root,
		Datasets: make([]*scamper.Dataset, len(n.VPs)),
		Results:  make([]*core.Result, len(n.VPs)),
		hostAdj:  adj,
	}
}

// beginVPSpan opens the "vp" span VP i's driver stages and inference
// attach under. It parents under SpanRoot — the scenario's run span, or
// whatever the rounds runner re-pointed SpanRoot at (its round span).
func (s *Scenario) beginVPSpan(i int, mode string) *obs.OpenSpan {
	sp := s.Spans.Begin(s.SpanRoot.ID(), "vp", s.Net.VPs[i].Name)
	if mode != "" {
		sp.SetAttr("mode", mode)
	}
	return sp
}

// RunVP measures and infers from one vantage point.
func (s *Scenario) RunVP(i int, cfg scamper.Config, opts core.Options) *core.Result {
	if s.Results[i] != nil {
		return s.Results[i]
	}
	vsp := s.beginVPSpan(i, "")
	d := &scamper.Driver{
		View:       s.View,
		Prober:     scamper.LocalProber{E: s.Engine, VP: s.Net.VPs[i]},
		HostASNs:   s.HostASNs,
		Cfg:        cfg,
		Obs:        s.Obs,
		Trace:      s.Trace,
		Spans:      s.Spans,
		SpanParent: vsp.ID(),
	}
	ds := d.Run()
	res := core.Infer(core.Input{
		Data: ds, View: s.View, Rel: s.Rel, RIR: s.RIR, IXP: s.IXP,
		HostASN: s.Net.HostASN, Siblings: s.Sibs, Opts: opts,
		Obs: s.Obs, Trace: s.Trace, Spans: s.Spans, SpanParent: vsp.ID(),
		Arena: &s.arena,
	})
	vsp.End()
	s.Datasets[i] = ds
	s.Results[i] = res
	s.Obs.Inc("eval.vp_runs")
	return res
}

// RunVPRemote measures VP i over the §5.8 remote-control protocol: a thin
// agent with its own engine dials back to an in-process controller over
// loopback TCP, optionally through a deterministic fault injector
// (faultSpec syntax: internal/faults, e.g. "seed=11,drop=0.12,heal=40").
// Probing is forced to one worker so the command stream — and therefore
// the fault schedule and the inferred links — is deterministic. A lost
// session degrades gracefully: the partial dataset is still inferred and
// Datasets[i].Stats.TargetsLost reports what was abandoned.
func (s *Scenario) RunVPRemote(i int, cfg scamper.Config, opts core.Options, faultSpec string) (*core.Result, error) {
	spec, err := faults.Parse(faultSpec)
	if err != nil {
		return nil, err
	}
	inj := faults.New(spec)

	ctrl, err := scamper.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ctrl.Close()
	ctrl.SetObs(s.Obs)
	ctrl.SetHelloTimeout(time.Second)

	// The agent gets a fresh engine so this run's measurement is a pure
	// function of (profile, seed, cfg, faultSpec) — prior local runs on
	// the scenario's shared engine cannot contaminate it.
	eng := probe.New(s.Net, s.Tab)
	eng.SetObs(s.Obs)
	eng.SetFaults(inj)
	// The agent keeps its own small span log (one span per protocol
	// session); the controller pulls and grafts it under the vp span after
	// the run, so redials and resumes are visible in the timeline.
	var agentSpans *obs.SpanLog
	if s.Spans.Enabled() {
		agentSpans = obs.NewSpanLog(256)
	}
	agent := &scamper.Agent{E: eng, VP: s.Net.VPs[i], Spans: agentSpans}
	agentDone := make(chan error, 1)
	go func() {
		agentDone <- agent.DialRetry(ctrl.Addr(), scamper.DialOptions{
			Dial:         inj.DialFunc,
			MaxRedials:   100,
			RedialBase:   time.Millisecond,
			RedialMax:    16 * time.Millisecond,
			HelloTimeout: 250 * time.Millisecond,
		})
	}()

	// Accept must race the agent's exit: a fault schedule harsh enough to
	// kill every hello means no session ever forms, and waiting on Accept
	// alone would block forever (ctrl.Close only runs when we return).
	type accepted struct {
		rp  *scamper.RemoteProber
		err error
	}
	acceptC := make(chan accepted, 1)
	go func() {
		rp, err := ctrl.Accept()
		acceptC <- accepted{rp, err}
	}()
	var rp *scamper.RemoteProber
	select {
	case a := <-acceptC:
		if a.err != nil {
			return nil, a.err
		}
		rp = a.rp
	case err := <-agentDone:
		// The agent may have established a session and then died; prefer
		// the session if one raced in, otherwise the run is over.
		select {
		case a := <-acceptC:
			if a.err != nil {
				return nil, a.err
			}
			rp = a.rp
			agentDone <- err // re-arm for the post-run drain below
		default:
			if err == nil {
				err = fmt.Errorf("eval: agent exited before establishing a session")
			}
			return nil, err
		}
	}
	// Loopback scale: frame processing is sub-millisecond (the engine is
	// simulated), so timeouts far below the WAN defaults keep chaos runs
	// fast while still dwarfing any injected stall.
	rp.SetHardening(scamper.Hardening{
		FrameTimeout: 100 * time.Millisecond,
		RetryBudget:  12,
		BackoffBase:  time.Millisecond,
		BackoffMax:   16 * time.Millisecond,
		ResumeWait:   2 * time.Second,
	})

	cfg.Workers = 1
	vsp := s.beginVPSpan(i, "remote")
	d := &scamper.Driver{
		View:       s.View,
		Prober:     rp,
		HostASNs:   s.HostASNs,
		Cfg:        cfg,
		Obs:        s.Obs,
		Trace:      s.Trace,
		Spans:      s.Spans,
		SpanParent: vsp.ID(),
	}
	ds := d.Run()
	// Graft the agent's session spans into the vp span before the bye.
	// Best-effort: a session the fault schedule killed for good has
	// nothing to pull, and that must not fail a degraded-but-useful run.
	if s.Spans.Enabled() {
		if recs, err := rp.PullSpans(); err == nil {
			s.Spans.MergeRecords(recs, vsp.ID())
		}
	}
	rp.Close()
	select {
	case <-agentDone:
		// A clean bye returns nil; a killed agent reports its redial
		// exhaustion. Either way the dataset below is what counts.
	case <-time.After(10 * time.Second):
	}

	res := core.Infer(core.Input{
		Data: ds, View: s.View, Rel: s.Rel, RIR: s.RIR, IXP: s.IXP,
		HostASN: s.Net.HostASN, Siblings: s.Sibs, Opts: opts,
		Obs: s.Obs, Trace: s.Trace, Spans: s.Spans, SpanParent: vsp.ID(),
		Arena: &s.arena,
	})
	vsp.End()
	s.Datasets[i] = ds
	s.Results[i] = res
	s.Obs.Inc("eval.vp_runs_remote")
	return res, nil
}

// RunAll measures from every VP. It is the one-worker degenerate case of
// the fleet coordinator: every VP runs locally, in VP order, on a fresh
// engine, and the outputs land in Datasets/Results exactly as before.
// RunFleet with more workers produces byte-identical merged output.
func (s *Scenario) RunAll(cfg scamper.Config) {
	if _, err := s.RunFleet(cfg, FleetOptions{Workers: 1}); err != nil {
		// Local-only fleets allocate no listener and validate no order:
		// there is nothing left that can fail.
		panic(fmt.Sprintf("eval: RunAll: %v", err))
	}
}

// RunVPIncremental measures and infers from one vantage point using
// cross-round state: state carries VP i's measurement memory from the
// previous round (trace transcripts, stop-set evolution, alias memo) and
// prev its previous inference result. The driver replays unchanged
// targets without spending probes, and the core splices prior
// attributions for routers far from every changed address. Passing a
// fresh state and nil prev degrades to a from-scratch run.
func (s *Scenario) RunVPIncremental(i int, cfg scamper.Config, opts core.Options, state *scamper.RoundState, prev *core.Result) *core.Result {
	if s.Results[i] != nil {
		return s.Results[i]
	}
	cfg.State = state
	vsp := s.beginVPSpan(i, "incremental")
	d := &scamper.Driver{
		View:       s.View,
		Prober:     scamper.LocalProber{E: s.Engine, VP: s.Net.VPs[i]},
		HostASNs:   s.HostASNs,
		Cfg:        cfg,
		Obs:        s.Obs,
		Trace:      s.Trace,
		Spans:      s.Spans,
		SpanParent: vsp.ID(),
	}
	ds := d.Run()
	res := core.Infer(core.Input{
		Data: ds, View: s.View, Rel: s.Rel, RIR: s.RIR, IXP: s.IXP,
		HostASN: s.Net.HostASN, Siblings: s.Sibs, Opts: opts,
		Obs: s.Obs, Trace: s.Trace, Spans: s.Spans, SpanParent: vsp.ID(),
		Prev: prev, Arena: &s.arena,
	})
	vsp.End()
	s.Datasets[i] = ds
	s.Results[i] = res
	s.Obs.Inc("eval.vp_runs_incremental")
	return res
}

// RunAllIncremental is RunAll with per-VP cross-round state and previous
// results. states and prevs are indexed like Net.VPs; prevs may be nil on
// the first round.
func (s *Scenario) RunAllIncremental(cfg scamper.Config, states []*scamper.RoundState, prevs []*core.Result) {
	if _, err := s.RunFleet(cfg, FleetOptions{Workers: 1, States: states, Prevs: prevs}); err != nil {
		panic(fmt.Sprintf("eval: RunAllIncremental: %v", err))
	}
}

// hostOrg reports whether asn belongs to the hosting organization.
func (s *Scenario) hostOrg(asn topo.ASN) bool { return s.HostASNs[asn] }

// neighborClass classifies a neighbor by the *inferred* relationship, the
// way the paper's Table 1 columns do.
type neighborClass int

const (
	classCust neighborClass = iota
	classPeer
	classProv
	classTraceOnly
	numClasses
)

func (c neighborClass) String() string {
	switch c {
	case classCust:
		return "cust"
	case classPeer:
		return "peer"
	case classProv:
		return "prov"
	default:
		return "trace"
	}
}

// classify buckets a neighbor AS: trace-only if absent from the public
// view's host adjacencies, else by inferred relationship.
func (s *Scenario) classify(asn topo.ASN) neighborClass {
	if !s.hostAdj[asn] {
		return classTraceOnly
	}
	switch s.Rel.Rel(s.Net.HostASN, asn) {
	case topo.RelCustomer:
		return classCust
	case topo.RelProvider:
		return classProv
	default:
		return classPeer
	}
}

// Validation is the §5.6 ground-truth comparison for one VP's result.
type Validation struct {
	Correct, Total int
	Wrong          []string
}

// Accuracy returns the fraction of inferred links that are correct.
func (v Validation) Accuracy() float64 {
	if v.Total == 0 {
		return 0
	}
	return float64(v.Correct) / float64(v.Total)
}

// Validate checks one result against ground truth: an inferred link is
// correct when its far address truly sits on a router of the inferred
// organization; a silent link is correct when the neighbor truly attaches
// at the named host router.
func (s *Scenario) Validate(res *core.Result) Validation {
	n := s.Net
	org := func(a topo.ASN) string {
		if as := n.ASes[a]; as != nil {
			return as.Org
		}
		return ""
	}
	attachedAt := make(map[topo.ASN]map[topo.RouterID]bool)
	note := func(far topo.ASN, near topo.RouterID) {
		if attachedAt[far] == nil {
			attachedAt[far] = make(map[topo.RouterID]bool)
		}
		attachedAt[far][near] = true
	}
	for _, lt := range n.InterdomainLinks(n.HostASN) {
		note(lt.FarAS, lt.NearRtr)
	}
	for _, sess := range n.Sessions() {
		if sess.A == n.HostASN {
			note(sess.B, sess.ARtr)
		} else if sess.B == n.HostASN {
			note(sess.A, sess.BRtr)
		}
	}

	var v Validation
	for _, l := range res.Links {
		v.Total++
		if l.Far != nil {
			r := n.RouterByAddr(l.FarAddr)
			switch {
			case r == nil:
				v.Wrong = append(v.Wrong, fmt.Sprintf("far addr %v unknown", l.FarAddr))
			case org(r.Owner) == org(l.FarAS) && org(r.Owner) != org(n.HostASN):
				v.Correct++
			default:
				v.Wrong = append(v.Wrong, fmt.Sprintf("far %v inferred %v truth %v heur=%s",
					l.FarAddr, l.FarAS, r.Owner, l.Heuristic))
			}
			continue
		}
		nearR := n.RouterByAddr(l.Near.Addrs[0])
		if nearR != nil && attachedAt[l.FarAS][nearR.ID] {
			v.Correct++
		} else {
			v.Wrong = append(v.Wrong, fmt.Sprintf("silent %v at %v misplaced", l.FarAS, l.Near.Addrs[0]))
		}
	}
	s.Obs.Add("eval.validate.total", int64(v.Total))
	s.Obs.Add("eval.validate.correct", int64(v.Correct))
	return v
}

// ValidateIXP checks inferred links whose far address lies on an IXP
// peering LAN against the IXP-published membership data (the PCH-style
// address→ASN records), the way §5.6 validated the R&E network's
// route-server interconnections. Links at addresses the dataset does not
// record are skipped (the paper could only check published members).
func (s *Scenario) ValidateIXP(res *core.Result) (correct, total int) {
	for _, l := range res.Links {
		if l.Far == nil {
			continue
		}
		if _, isIXP := s.IXP.IsIXP(l.FarAddr); !isIXP {
			continue
		}
		member, ok := s.IXP.MemberAt(l.FarAddr)
		if !ok {
			continue
		}
		total++
		if member == l.FarAS || s.Sibs.SameOrg(member, l.FarAS) {
			correct++
		}
	}
	return correct, total
}

// Coverage reports the fraction of BGP-visible host neighbors with at
// least one inferred border router (the "Coverage of BGP" row of Table 1).
func (s *Scenario) Coverage(res *core.Result) (found, total int) {
	for _, nb := range s.View.NeighborsOf(s.Net.HostASN) {
		if s.hostOrg(nb) {
			continue
		}
		total++
		if len(res.Neighbors[nb]) > 0 {
			found++
		}
	}
	return found, total
}
