package eval

import (
	"fmt"
	"sort"
	"strings"

	"bdrmap/internal/core"
	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
)

// boundary is one observed interdomain crossing: the last host-side hop
// and the first neighbor-side inference. Border routers are identified by
// their canonical (smallest) observed address so they can be compared
// across VPs.
type boundary struct {
	nearID netx.Addr
	nextAS topo.ASN
}

// boundaries extracts, per destination prefix, the interdomain crossing of
// each trace in one VP's dataset.
func (s *Scenario) boundaries(vp int) map[netx.Prefix][]boundary {
	res := s.Results[vp]
	ds := s.Datasets[vp]
	out := make(map[netx.Prefix][]boundary)
	for _, tr := range ds.Traces {
		prefix, ok := s.Tab.Lookup(tr.Dst)
		if !ok {
			continue
		}
		var prev *core.RouterNode
		for _, h := range tr.Hops {
			if h.Type != probe.HopTimeExceeded {
				continue
			}
			node := res.RouterByAddr(h.Addr)
			if node == nil {
				prev = nil
				continue
			}
			if prev != nil && prev.IsHost && !node.IsHost && node.Owner != 0 {
				out[prefix] = append(out[prefix], boundary{
					nearID: prev.Addrs[0],
					nextAS: node.Owner,
				})
				break
			}
			prev = node
		}
	}
	return out
}

// Figure14 is the distribution of per-prefix egress diversity across all
// VPs: how many distinct border routers and next-hop ASes carry probe
// traffic toward each destination prefix.
type Figure14 struct {
	Prefixes   int
	BorderHist map[int]int // #border routers -> #prefixes
	NextASHist map[int]int // #next-hop ASes  -> #prefixes
}

// BuildFigure14 computes the figure over all measured VPs.
func BuildFigure14(s *Scenario) *Figure14 {
	borders := make(map[netx.Prefix]map[netx.Addr]bool)
	nexts := make(map[netx.Prefix]map[topo.ASN]bool)
	for i := range s.Net.VPs {
		if s.Results[i] == nil {
			continue
		}
		for p, bs := range s.boundaries(i) {
			if borders[p] == nil {
				borders[p] = make(map[netx.Addr]bool)
				nexts[p] = make(map[topo.ASN]bool)
			}
			for _, b := range bs {
				borders[p][b.nearID] = true
				nexts[p][b.nextAS] = true
			}
		}
	}
	f := &Figure14{
		BorderHist: make(map[int]int),
		NextASHist: make(map[int]int),
	}
	for p := range borders {
		f.Prefixes++
		f.BorderHist[len(borders[p])]++
		f.NextASHist[len(nexts[p])]++
	}
	return f
}

// FracWithin returns the fraction of prefixes whose count lies in [lo,hi].
func fracWithin(hist map[int]int, total, lo, hi int) float64 {
	if total == 0 {
		return 0
	}
	n := 0
	for k, v := range hist {
		if k >= lo && k <= hi {
			n += v
		}
	}
	return float64(n) / float64(total)
}

// BorderFrac returns the fraction of prefixes with lo..hi border routers.
func (f *Figure14) BorderFrac(lo, hi int) float64 {
	return fracWithin(f.BorderHist, f.Prefixes, lo, hi)
}

// NextASFrac returns the fraction of prefixes with lo..hi next-hop ASes.
func (f *Figure14) NextASFrac(lo, hi int) float64 {
	return fracWithin(f.NextASHist, f.Prefixes, lo, hi)
}

// Format renders both CDFs.
func (f *Figure14) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: egress diversity over %d prefixes\n", f.Prefixes)
	render := func(name string, hist map[int]int) {
		var ks []int
		for k := range hist {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		cum := 0
		fmt.Fprintf(&b, "  %s (count -> CDF):\n", name)
		for _, k := range ks {
			cum += hist[k]
			fmt.Fprintf(&b, "    %3d  %.3f\n", k, float64(cum)/float64(f.Prefixes))
		}
	}
	render("border routers", f.BorderHist)
	render("next-hop ASes", f.NextASHist)
	return b.String()
}

// Figure15 measures the marginal utility of VPs: for each studied
// neighbor network, the cumulative number of distinct interdomain links
// discovered as VPs are added in deployment order.
type Figure15 struct {
	Networks []Fig15Series
	NumVPs   int
}

// Fig15Series is one neighbor network's discovery curve.
type Fig15Series struct {
	Name       string
	ASN        topo.ASN
	TrueLinks  int   // ground-truth link count with the host
	Cumulative []int // links discovered with 1..n VPs
}

// fig15Targets picks the networks to study: tagged big peers and CDNs.
func (s *Scenario) fig15Targets() []Fig15Series {
	var out []Fig15Series
	var names []string
	for name := range s.Net.Tags {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		asn := s.Net.Tags[name]
		truth := 0
		for _, lt := range s.Net.InterdomainLinks(s.Net.HostASN) {
			if lt.FarAS == asn {
				truth++
			}
		}
		out = append(out, Fig15Series{Name: name, ASN: asn, TrueLinks: truth})
	}
	return out
}

// BuildFigure15 computes discovery curves over the measured VPs.
func BuildFigure15(s *Scenario) *Figure15 {
	f := &Figure15{NumVPs: len(s.Net.VPs)}
	targets := s.fig15Targets()
	for ti := range targets {
		seen := make(map[[2]netx.Addr]bool)
		for i := range s.Net.VPs {
			if s.Results[i] != nil {
				for _, l := range s.Results[i].Neighbors[targets[ti].ASN] {
					key := [2]netx.Addr{l.Near.Addrs[0], l.FarAddr}
					seen[key] = true
				}
			}
			targets[ti].Cumulative = append(targets[ti].Cumulative, len(seen))
		}
	}
	f.Networks = targets
	return f
}

// VPsToSeeAll returns how many VPs were needed to observe every link the
// full deployment observed (0 if none observed).
func (sr Fig15Series) VPsToSeeAll() int {
	if len(sr.Cumulative) == 0 {
		return 0
	}
	max := sr.Cumulative[len(sr.Cumulative)-1]
	if max == 0 {
		return 0
	}
	for i, v := range sr.Cumulative {
		if v == max {
			return i + 1
		}
	}
	return len(sr.Cumulative)
}

// Format renders the curves.
func (f *Figure15) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 15: marginal utility of VPs (%d VPs)\n", f.NumVPs)
	for _, sr := range f.Networks {
		fmt.Fprintf(&b, "  %-14s (AS %d, %d true links): %v  [all seen with %d VPs]\n",
			sr.Name, sr.ASN, sr.TrueLinks, sr.Cumulative, sr.VPsToSeeAll())
	}
	return b.String()
}

// Figure16 records, per studied neighbor, the longitudes of the
// interdomain links each VP observes, against the VP's own longitude.
type Figure16 struct {
	Networks []Fig16Network
}

// Fig16Network is the geographic observation matrix of one neighbor.
type Fig16Network struct {
	Name string
	ASN  topo.ASN
	Rows []Fig16Row
}

// Fig16Row is one VP's view: its longitude and the longitudes of links
// it observed toward the neighbor.
type Fig16Row struct {
	VPName   string
	VPLon    float64
	LinkLons []float64
}

// BuildFigure16 derives the matrix from the measured VPs. Longitudes come
// from the topology's router placement, standing in for the reverse-DNS
// location hints the paper used.
func BuildFigure16(s *Scenario) *Figure16 {
	f := &Figure16{}
	for _, tgt := range s.fig15Targets() {
		nw := Fig16Network{Name: tgt.Name, ASN: tgt.ASN}
		for i, vp := range s.Net.VPs {
			if s.Results[i] == nil {
				continue
			}
			row := Fig16Row{VPName: vp.Name, VPLon: s.Net.Router(vp.Router).Longitude}
			seen := map[float64]bool{}
			for _, l := range s.Results[i].Neighbors[tgt.ASN] {
				if r := s.Net.RouterByAddr(l.Near.Addrs[0]); r != nil && !seen[r.Longitude] {
					seen[r.Longitude] = true
					row.LinkLons = append(row.LinkLons, r.Longitude)
				}
			}
			sort.Float64s(row.LinkLons)
			nw.Rows = append(nw.Rows, row)
		}
		f.Networks = append(f.Networks, nw)
	}
	return f
}

// Format renders the matrix.
func (f *Figure16) Format() string {
	var b strings.Builder
	b.WriteString("Figure 16: VP longitude vs observed link longitudes\n")
	for _, nw := range f.Networks {
		fmt.Fprintf(&b, "  %s (AS %d):\n", nw.Name, nw.ASN)
		for _, r := range nw.Rows {
			fmt.Fprintf(&b, "    %-12s lon %7.1f links %v\n", r.VPName, r.VPLon, r.LinkLons)
		}
	}
	return b.String()
}
