package eval

import (
	"fmt"
	"strings"

	"bdrmap/internal/core"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// Sweep reproduces §5.7's robustness statement — "we also used bdrmap to
// infer border routers of 25 other networks, with similar results" — by
// running the full pipeline over many (profile, seed) worlds and
// summarizing accuracy and coverage.

// SweepRow is one world's outcome.
type SweepRow struct {
	Profile  string
	Seed     int64
	Links    int
	Accuracy float64
	Coverage float64
}

// SweepSummary aggregates a sweep.
type SweepSummary struct {
	Rows []SweepRow

	MeanAccuracy, MinAccuracy float64
	MeanCoverage, MinCoverage float64
}

// Sweep runs every (profile, seed) combination.
func Sweep(profiles []topo.Profile, seeds []int64) SweepSummary {
	var sum SweepSummary
	accTot, covTot := 0.0, 0.0
	sum.MinAccuracy, sum.MinCoverage = 1, 1
	for _, prof := range profiles {
		for _, seed := range seeds {
			s := Build(prof, seed)
			res := s.RunVP(0, scamper.Config{}, core.Options{})
			v := s.Validate(res)
			found, total := s.Coverage(res)
			cov := 0.0
			if total > 0 {
				cov = float64(found) / float64(total)
			}
			row := SweepRow{
				Profile: prof.Name, Seed: seed,
				Links: v.Total, Accuracy: v.Accuracy(), Coverage: cov,
			}
			sum.Rows = append(sum.Rows, row)
			accTot += row.Accuracy
			covTot += row.Coverage
			if row.Accuracy < sum.MinAccuracy {
				sum.MinAccuracy = row.Accuracy
			}
			if row.Coverage < sum.MinCoverage {
				sum.MinCoverage = row.Coverage
			}
		}
	}
	if n := float64(len(sum.Rows)); n > 0 {
		sum.MeanAccuracy = accTot / n
		sum.MeanCoverage = covTot / n
	}
	return sum
}

// Format renders the sweep as a table.
func (s SweepSummary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %6s %7s %10s %10s\n", "network", "seed", "links", "accuracy", "coverage")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-14s %6d %7d %9.1f%% %9.1f%%\n",
			r.Profile, r.Seed, r.Links, 100*r.Accuracy, 100*r.Coverage)
	}
	fmt.Fprintf(&b, "%-14s %6s %7s %9.1f%% %9.1f%%   (min %.1f%% / %.1f%%)\n",
		"mean", "", "", 100*s.MeanAccuracy, 100*s.MeanCoverage,
		100*s.MinAccuracy, 100*s.MinCoverage)
	return b.String()
}
