package eval

import (
	"bdrmap/internal/alias"
	"bdrmap/internal/core"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// StopSetSavings compares probing cost with and without the doubletree
// stop set on identical topologies (§5.3's efficiency mechanism).
type StopSetSavings struct {
	PacketsWith, PacketsWithout int64
	TracesStopped               int
}

// SavedFrac returns the fraction of probe packets the stop set avoided.
func (ss StopSetSavings) SavedFrac() float64 {
	if ss.PacketsWithout == 0 {
		return 0
	}
	return 1 - float64(ss.PacketsWith)/float64(ss.PacketsWithout)
}

// MeasureStopSet runs the driver twice on fresh engines.
func MeasureStopSet(prof topo.Profile, seed int64) StopSetSavings {
	with := Build(prof, seed)
	with.RunVP(0, scamper.Config{Workers: 1}, core.Options{})
	without := Build(prof, seed)
	without.RunVP(0, scamper.Config{Workers: 1, DisableStopSet: true}, core.Options{})
	return StopSetSavings{
		PacketsWith:    with.Engine.Stats().PacketsSent,
		PacketsWithout: without.Engine.Stats().PacketsSent,
		TracesStopped:  with.Datasets[0].Stats.TracesStopped,
	}
}

// Ablation compares a baseline run against a variant.
type Ablation struct {
	Name                    string
	BaseAcc, VariantAcc     float64
	BaseLinks, VariantLinks int
}

// AblationNoAlias measures figure 13's failure mode: without alias
// resolution, unmerged host interfaces masquerade as neighbor routers.
func AblationNoAlias(prof topo.Profile, seed int64) Ablation {
	base := Build(prof, seed)
	base.RunVP(0, scamper.Config{Workers: 1}, core.Options{})
	vb := base.Validate(base.Results[0])

	variant := Build(prof, seed)
	variant.RunVP(0, scamper.Config{Workers: 1, DisableAlias: true},
		core.Options{NoAnalyticalAlias: true})
	vv := variant.Validate(variant.Results[0])

	return Ablation{
		Name:    "no-alias-resolution",
		BaseAcc: vb.Accuracy(), VariantAcc: vv.Accuracy(),
		BaseLinks: vb.Total, VariantLinks: vv.Total,
	}
}

// AblationNoThirdParty disables §5.4.5 third-party detection. Inference
// reruns on the same dataset (the heuristics are pure given measurements).
func AblationNoThirdParty(prof topo.Profile, seed int64) Ablation {
	s := Build(prof, seed)
	s.RunVP(0, scamper.Config{Workers: 1}, core.Options{})
	vb := s.Validate(s.Results[0])

	variantRes := core.Infer(core.Input{
		Data: s.Datasets[0], View: s.View, Rel: s.Rel, RIR: s.RIR, IXP: s.IXP,
		HostASN: s.Net.HostASN, Siblings: s.Sibs,
		Opts: core.Options{NoThirdParty: true},
	})
	vv := s.Validate(variantRes)

	return Ablation{
		Name:    "no-third-party-detection",
		BaseAcc: vb.Accuracy(), VariantAcc: vv.Accuracy(),
		BaseLinks: vb.Total, VariantLinks: vv.Total,
	}
}

// AblationSingleAddr probes one address per block instead of up to five
// (§5.3's retry rule).
func AblationSingleAddr(prof topo.Profile, seed int64) Ablation {
	base := Build(prof, seed)
	base.RunVP(0, scamper.Config{Workers: 1}, core.Options{})
	vb := base.Validate(base.Results[0])

	variant := Build(prof, seed)
	variant.RunVP(0, scamper.Config{Workers: 1, MaxAddrsPerBlock: 1}, core.Options{})
	vv := variant.Validate(variant.Results[0])

	return Ablation{
		Name:    "single-address-per-block",
		BaseAcc: vb.Accuracy(), VariantAcc: vv.Accuracy(),
		BaseLinks: vb.Total, VariantLinks: vv.Total,
	}
}

// AblationAllyOneRound weakens Ally to one round with no repetition
// (§5.3 "limit false aliases" repeats five times at five-minute
// intervals); reports resulting alias false positives.
type AliasAblation struct {
	RoundsFive, RoundsOne struct {
		Positives, FalsePositives int
	}
}

// MeasureAllyRounds counts false-positive alias pairs under both settings.
func MeasureAllyRounds(prof topo.Profile, seed int64) AliasAblation {
	var out AliasAblation
	measure := func(rounds int) (pos, falsePos int) {
		s := Build(prof, seed)
		s.RunVP(0, scamper.Config{Workers: 1, AliasCfg: alias.Config{AllyRounds: rounds}}, core.Options{})
		for _, pair := range s.Datasets[0].Resolver.Positives() {
			pos++
			ra := s.Net.RouterByAddr(pair[0])
			rb := s.Net.RouterByAddr(pair[1])
			if ra != nil && rb != nil && ra.ID != rb.ID {
				falsePos++
			}
		}
		return pos, falsePos
	}
	out.RoundsFive.Positives, out.RoundsFive.FalsePositives = measure(5)
	out.RoundsOne.Positives, out.RoundsOne.FalsePositives = measure(1)
	return out
}
