package eval

import (
	"testing"

	"bdrmap/internal/core"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

func TestTable1Tiny(t *testing.T) {
	s := Build(topo.TinyProfile(), 1)
	res := s.RunVP(0, scamper.Config{Workers: 1}, core.Options{})
	tbl := BuildTable1(s, res)
	if tbl.ObservedBGP[classCust] == 0 {
		t.Fatal("no BGP customers observed")
	}
	if tbl.CoveragePct() < 80 {
		t.Errorf("coverage %.1f%% too low", tbl.CoveragePct())
	}
	out := tbl.Format()
	if len(out) < 100 {
		t.Fatalf("format too short:\n%s", out)
	}
	t.Logf("\n%s", out)
}

func TestTable1ShapeRE(t *testing.T) {
	if testing.Short() {
		t.Skip("profile run in -short mode")
	}
	s := Build(topo.REProfile(), 1)
	res := s.RunVP(0, scamper.Config{}, core.Options{})
	tbl := BuildTable1(s, res)
	t.Logf("\n%s", tbl.Format())

	// Paper shape: the firewall heuristic identifies at least half of
	// customer routers; coverage of BGP neighbors is >= 90%.
	if got := tbl.RowPct(core.HeurFirewall, int(classCust)); got < 40 {
		t.Errorf("firewall heuristic on customers = %.1f%%, want >= 40%%", got)
	}
	if tbl.CoveragePct() < 90 {
		t.Errorf("BGP coverage = %.1f%%, want >= 90%%", tbl.CoveragePct())
	}
	// Trace-only neighbors (hidden IXP peers) must exist.
	if tbl.TraceOnly == 0 {
		t.Error("no trace-only neighbors found")
	}
	if tbl.RouterTotals[classProv] == 0 {
		t.Error("no provider routers inferred")
	}
}

func TestTable1ShapeLargeAccess(t *testing.T) {
	if testing.Short() {
		t.Skip("profile run in -short mode")
	}
	s := Build(topo.LargeAccessProfile(), 1)
	res := s.RunVP(0, scamper.Config{}, core.Options{})
	tbl := BuildTable1(s, res)
	t.Logf("\n%s", tbl.Format())
	// Paper shape (large access column): firewall dominates customers;
	// onenet dominates providers; coverage >= 90%.
	if got := tbl.RowPct(core.HeurFirewall, int(classCust)); got < 40 {
		t.Errorf("firewall on customers = %.1f%%, want >= 40%%", got)
	}
	if got := tbl.RowPct(core.HeurOnenet, int(classProv)); got < 50 {
		t.Errorf("onenet on providers = %.1f%%, want >= 50%%", got)
	}
	if tbl.CoveragePct() < 90 {
		t.Errorf("coverage = %.1f%%", tbl.CoveragePct())
	}
	// Silent neighbors appear (8.x rows).
	silent := tbl.RowPct(core.HeurSilent, int(classCust)) + tbl.RowPct(core.HeurOtherICMP, int(classCust))
	if silent == 0 {
		t.Error("no silent/other-ICMP customers inferred")
	}
}

func TestValidationBandsAllProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("profile runs in -short mode")
	}
	for _, prof := range []topo.Profile{topo.REProfile(), topo.SmallAccessProfile()} {
		s := Build(prof, 1)
		res := s.RunVP(0, scamper.Config{}, core.Options{})
		v := s.Validate(res)
		t.Logf("%s: %d/%d = %.3f", prof.Name, v.Correct, v.Total, v.Accuracy())
		if v.Accuracy() < 0.955 {
			t.Errorf("%s accuracy %.3f below paper band", prof.Name, v.Accuracy())
		}
	}
}

func TestFigure14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-VP run in -short mode")
	}
	// A reduced large-access network with several VPs: most prefixes
	// should have multiple possible egress routers across VPs.
	prof := topo.LargeAccessProfile()
	prof.NumCustomers = 60
	prof.DistantPerTransit = 15
	prof.NumVPs = 8
	s := Build(prof, 1)
	s.RunAll(scamper.Config{})
	f := BuildFigure14(s)
	if f.Prefixes == 0 {
		t.Fatal("no prefixes measured")
	}
	t.Logf("\n%s", f.Format())
	multi := 1 - f.BorderFrac(0, 1)
	if multi < 0.5 {
		t.Errorf("only %.2f of prefixes have >1 egress router; expected diversity", multi)
	}
	// Next-hop AS diversity is lower than router diversity (paper: most
	// prefixes use the same next hop AS from every VP).
	oneNext := f.NextASFrac(1, 1)
	oneBorder := f.BorderFrac(1, 1)
	if oneNext <= oneBorder {
		t.Errorf("expected AS-level density lower than router-level: sameNext=%.2f sameBorder=%.2f",
			oneNext, oneBorder)
	}
}

func TestFigure15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-VP run in -short mode")
	}
	prof := topo.LargeAccessProfile()
	prof.NumCustomers = 40
	prof.DistantPerTransit = 10
	s := Build(prof, 1)
	s.RunAll(scamper.Config{})
	f := BuildFigure15(s)
	t.Logf("\n%s", f.Format())

	series := make(map[string]Fig15Series)
	for _, sr := range f.Networks {
		series[sr.Name] = sr
	}
	akamai, ok1 := series["akamai-like"]
	level3, ok2 := series["bigpeer0"]
	if !ok1 || !ok2 {
		t.Fatalf("missing tagged networks: %v", f.Networks)
	}
	// Akamai-like pins each prefix to one interconnect: a single VP sees
	// every link the deployment will ever see.
	if akamai.VPsToSeeAll() > 2 {
		t.Errorf("akamai-like required %d VPs, want <= 2", akamai.VPsToSeeAll())
	}
	// The Level3-like peer announces everywhere: links are only visible
	// from nearby VPs, so discovery grows with deployment.
	if level3.VPsToSeeAll() < 5 {
		t.Errorf("bigpeer0 required %d VPs, want >= 5 (hot potato)", level3.VPsToSeeAll())
	}
	last := level3.Cumulative[len(level3.Cumulative)-1]
	first := level3.Cumulative[0]
	if last <= first {
		t.Errorf("bigpeer0 curve flat: %v", level3.Cumulative)
	}
}

func TestFigure16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-VP run in -short mode")
	}
	prof := topo.LargeAccessProfile()
	prof.NumCustomers = 40
	prof.DistantPerTransit = 10
	s := Build(prof, 1)
	s.RunAll(scamper.Config{})
	f := BuildFigure16(s)
	t.Logf("\n%s", f.Format())
	var level3 *Fig16Network
	for i := range f.Networks {
		if f.Networks[i].Name == "bigpeer0" {
			level3 = &f.Networks[i]
		}
	}
	if level3 == nil {
		t.Fatal("bigpeer0 missing")
	}
	// Hot potato: each VP mostly observes links near its own longitude.
	nearer := 0
	total := 0
	for _, row := range level3.Rows {
		for _, lon := range row.LinkLons {
			total++
			d := row.VPLon - lon
			if d < 0 {
				d = -d
			}
			if d < 15 {
				nearer++
			}
		}
	}
	if total == 0 {
		t.Fatal("no link observations")
	}
	if frac := float64(nearer) / float64(total); frac < 0.6 {
		t.Errorf("only %.2f of observed links near the VP; expected hot-potato locality", frac)
	}
}

func TestValidateIXPAgainstPublishedData(t *testing.T) {
	if testing.Short() {
		t.Skip("profile run in -short mode")
	}
	// The R&E profile has three IXPs with route-server peers: the §5.6
	// IXP-data validation channel must find and confirm them.
	s := Build(topo.REProfile(), 1)
	res := s.RunVP(0, scamper.Config{}, core.Options{})
	ok, total := s.ValidateIXP(res)
	t.Logf("ixp-published validation: %d/%d", ok, total)
	if total == 0 {
		t.Fatal("no IXP links validated (PCH dataset empty?)")
	}
	if float64(ok)/float64(total) < 0.9 {
		t.Errorf("IXP validation %d/%d below 90%%", ok, total)
	}
}

func TestSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	sw := Sweep([]topo.Profile{topo.TinyProfile(), topo.EnterpriseProfile()}, []int64{1, 2, 3})
	t.Logf("\n%s", sw.Format())
	if len(sw.Rows) != 6 {
		t.Fatalf("rows = %d", len(sw.Rows))
	}
	if sw.MeanAccuracy < 0.9 {
		t.Errorf("mean accuracy %.3f < 0.9", sw.MeanAccuracy)
	}
	if sw.MinAccuracy <= 0 || sw.MinCoverage <= 0 {
		t.Errorf("min stats not computed: %.3f %.3f", sw.MinAccuracy, sw.MinCoverage)
	}
}

func TestStopSetSavings(t *testing.T) {
	ss := MeasureStopSet(topo.TinyProfile(), 1)
	t.Logf("stop set: with=%d without=%d saved=%.2f stopped=%d",
		ss.PacketsWith, ss.PacketsWithout, ss.SavedFrac(), ss.TracesStopped)
	if ss.SavedFrac() <= 0 {
		t.Error("stop set saved nothing")
	}
	if ss.TracesStopped == 0 {
		t.Error("no traces stopped")
	}
}

func TestAblationNoAlias(t *testing.T) {
	a := AblationNoAlias(topo.TinyProfile(), 1)
	t.Logf("%+v", a)
	if a.BaseAcc == 0 || a.VariantAcc == 0 {
		t.Fatal("ablation produced no results")
	}
}

func TestAblationNoThirdParty(t *testing.T) {
	if testing.Short() {
		t.Skip("profile run in -short mode")
	}
	// Use a profile rich in third-party archetypes.
	prof := topo.REProfile()
	a := AblationNoThirdParty(prof, 1)
	t.Logf("%+v", a)
	if a.VariantAcc > a.BaseAcc {
		t.Errorf("disabling third-party detection should not improve accuracy: %.3f -> %.3f",
			a.BaseAcc, a.VariantAcc)
	}
}

func TestAblationSingleAddr(t *testing.T) {
	a := AblationSingleAddr(topo.TinyProfile(), 1)
	t.Logf("%+v", a)
	if a.BaseLinks == 0 {
		t.Fatal("no links in baseline")
	}
}

func TestMeasureAllyRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("double pipeline in -short mode")
	}
	a := MeasureAllyRounds(topo.TinyProfile(), 1)
	t.Logf("%+v", a)
	if a.RoundsFive.FalsePositives > a.RoundsOne.FalsePositives {
		t.Errorf("five rounds produced more false aliases than one: %+v", a)
	}
}
