package eval

import "bdrmap/internal/topo"

// ScenarioSpec registers one extension scenario: the generator profile plus
// the §5.4 assumption the topology deliberately stresses and the heuristic
// expected to carry the attribution. DESIGN.md renders this mapping; the
// eval tests assert the expectation holds.
type ScenarioSpec struct {
	Profile topo.Profile
	// Stresses names the §5.4 assumption under stress.
	Stresses string
	// Expect names the heuristic (or observable) expected to fire.
	Expect string
}

// ExtensionScenarios lists the scenarios beyond the paper's four validation
// networks, in presentation order.
func ExtensionScenarios() []ScenarioSpec {
	return []ScenarioSpec{
		{
			Profile:  topo.RemotePeeringProfile(),
			Stresses: "distance/latency monotonicity: an IXP LAN address implies a local attachment",
			Expect:   "hidden-peer step (§5.4.5 step 5.5) still attributes remote members by their LAN address, despite WAN-scale RTTs",
		},
		{
			Profile:  topo.HypergiantProfile(),
			Stresses: "hierarchy: a peer's customer cone does not shortcut past the host (§5.4.5)",
			Expect:   "relationship heuristic (§5.4.5) despite the hypergiant's flattened fanout",
		},
		{
			Profile:  topo.RouteServerMixProfile(),
			Stresses: "a mostly-complete BGP view: every peer is visible somewhere (§5.4.5 step 5.5)",
			Expect:   "hidden-peer step for route-server members; relationship steps for bilateral ones",
		},
		{
			Profile:  topo.RegionalVPProfile(),
			Stresses: "VP coverage: hot-potato routing hides far-coast links from regional VPs (figures 15/16)",
			Expect:   "coastal links absent from the single-region view; coverage recovers with spread VPs",
		},
	}
}

// AllProfiles returns the built-in validation profiles plus every extension
// scenario profile (the sweep surface future multi-VP work shards over).
func AllProfiles() []topo.Profile {
	return topo.BuiltinProfiles()
}
