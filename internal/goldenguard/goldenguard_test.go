package goldenguard

import "testing"

func TestErrUnderCI(t *testing.T) {
	t.Setenv("CI", "true")
	if Err() == nil {
		t.Fatal("Err() = nil with CI=true, want refusal")
	}
}

func TestErrOutsideCI(t *testing.T) {
	for _, v := range []string{"", "false", "1", "TRUE"} {
		t.Setenv("CI", v)
		if err := Err(); err != nil {
			t.Fatalf("Err() with CI=%q: %v", v, err)
		}
	}
}

func TestCheckPassesLocally(t *testing.T) {
	t.Setenv("CI", "")
	Check(t) // must not fail
}
