// Package goldenguard stops golden-file regeneration from running in CI.
//
// Every golden suite in this repo accepts an -update flag that rewrites
// its checked-in expectations. That is a local, review-the-diff workflow;
// if it ever ran in CI the suite would trivially pass while silently
// re-baselining whatever the code currently does. Each -update branch
// therefore calls Check before writing anything.
package goldenguard

import (
	"fmt"
	"os"
	"testing"
)

// Err reports whether the environment forbids golden regeneration:
// non-nil when CI=true (the convention GitHub Actions and most CI systems
// set), nil otherwise.
func Err() error {
	if os.Getenv("CI") == "true" {
		return fmt.Errorf("goldenguard: refusing to rewrite golden files under CI=true; regenerate locally with -update and review the diff")
	}
	return nil
}

// Check fails the test immediately if golden regeneration is forbidden.
func Check(t testing.TB) {
	t.Helper()
	if err := Err(); err != nil {
		t.Fatal(err)
	}
}
