// Package probe simulates the network's response to active measurement:
// Paris-style traceroute, ping, and the UDP/TCP/ICMP/TTL-limited probes
// alias resolution relies on. It is the stand-in for the live Internet that
// scamper probes in the paper, and it reproduces — organically, from
// routing and per-router behaviour flags — every traceroute idiosyncrasy
// §4 of the paper catalogues: responses from provider-assigned
// interconnection addresses, third-party source addresses chosen via the
// route back to the prober, firewalled enterprise edges, silent routers,
// virtual-router response addresses, IXP LAN addresses, and rate limiting.
//
// Measurement results deliberately expose only what a real prober sees:
// response source addresses, IP-ID values, and reply types. Ground truth
// stays inside the topology package.
package probe

import (
	"math/rand"
	"sync"
	"time"

	"bdrmap/internal/bgp"
	"bdrmap/internal/faults"
	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

// Engine simulates probe forwarding and responses over one network.
// It is safe for concurrent use; the simulated clock is shared.
type Engine struct {
	Net *topo.Network
	Tab *bgp.Table

	mu    sync.Mutex
	now   time.Duration // simulated time since start
	ipid  map[topo.RouterID]*ipidState
	rate  map[topo.RouterID]*rateState
	rng   *rand.Rand
	bfs   map[topo.RouterID]*bfsTree
	stats Stats

	// orgAtts caches, per owner AS, the flattened attachment list of its
	// whole organization — chooseEgress scans it once per forwarded hop.
	orgAtts map[topo.ASN][]topo.Attachment

	// orgOf groups sibling ASes: routers of one organization share an IGP
	// and a routing policy, so forwarding decisions are made per org.
	orgOf map[topo.ASN]string
	orgAS map[string][]topo.ASN

	// lat holds the latency/congestion model (latency.go).
	lat latencyState

	// eobs holds pre-resolved observability counters (nil-safe when no
	// registry was attached; see SetObs).
	eobs engineObs

	// flt, when set, drops a deterministic schedule of probe responses
	// before the prober sees them — simulated packet loss on the probed
	// path, as opposed to control-channel faults (see internal/faults).
	flt *faults.Injector
}

// engineObs pre-resolves the engine's hot-path counters so each probe
// packet costs one atomic add, not a registry lookup. All fields are
// nil-safe Counters/Histograms: the zero value is a no-op.
type engineObs struct {
	traceroutes *obs.Counter
	probes      *obs.Counter
	packets     *obs.Counter
	responses   *obs.Counter

	respTimeExceeded *obs.Counter
	respEchoReply    *obs.Counter
	respUnreachable  *obs.Counter
	respTimeout      *obs.Counter
	rateLimitDrops   *obs.Counter
	faultDrops       *obs.Counter

	traceHops *obs.Histogram
}

// SetObs attaches a metrics registry to the engine. Call before probing
// starts; a nil registry (the default) keeps the engine metric-free.
func (e *Engine) SetObs(r *obs.Registry) {
	if r == nil {
		e.eobs = engineObs{}
		return
	}
	e.eobs = engineObs{
		traceroutes:      r.Counter("probe.traceroutes"),
		probes:           r.Counter("probe.probes"),
		packets:          r.Counter("probe.packets_sent"),
		responses:        r.Counter("probe.responses"),
		respTimeExceeded: r.Counter("probe.resp.time_exceeded"),
		respEchoReply:    r.Counter("probe.resp.echo_reply"),
		respUnreachable:  r.Counter("probe.resp.unreachable"),
		respTimeout:      r.Counter("probe.resp.timeout"),
		rateLimitDrops:   r.Counter("probe.ratelimit.drops"),
		faultDrops:       r.Counter("probe.faults.dropped"),
		traceHops:        r.Histogram("probe.trace_hops", []int64{2, 4, 8, 16, 32, 64}),
	}
}

// SetFaults attaches a fault injector whose probe-response schedule the
// engine consults: each would-be response may be silently dropped,
// simulating path packet loss (§4: unresponsive routers, rate limiting).
// The schedule is deterministic for a fixed seed as long as probing is
// sequential (one worker, or a single remote agent).
func (e *Engine) SetFaults(inj *faults.Injector) { e.flt = inj }

// dropInjected draws the next probe-response fate from the attached
// injector. Responses that never existed must not draw.
func (e *Engine) dropInjected() bool {
	if e.flt == nil || !e.flt.DropProbeResponse() {
		return false
	}
	e.eobs.faultDrops.Inc()
	return true
}

// countHop attributes one traceroute hop response to its ICMP class.
func (e *Engine) countHop(t HopType) {
	switch t {
	case HopTimeExceeded:
		e.eobs.respTimeExceeded.Inc()
	case HopEchoReply:
		e.eobs.respEchoReply.Inc()
	case HopUnreachable:
		e.eobs.respUnreachable.Inc()
	default:
		e.eobs.respTimeout.Inc()
	}
}

// Stats counts the traffic the engine has carried.
type Stats struct {
	Traceroutes  int64
	Probes       int64
	PacketsSent  int64 // individual probe packets (one per traceroute hop)
	ResponsesRcv int64
}

// New creates an engine over a built network and its routing table.
func New(net *topo.Network, tab *bgp.Table) *Engine {
	e := &Engine{
		Net:     net,
		Tab:     tab,
		ipid:    make(map[topo.RouterID]*ipidState),
		rate:    make(map[topo.RouterID]*rateState),
		rng:     rand.New(rand.NewSource(1)),
		bfs:     make(map[topo.RouterID]*bfsTree),
		orgOf:   make(map[topo.ASN]string),
		orgAS:   make(map[string][]topo.ASN),
		orgAtts: make(map[topo.ASN][]topo.Attachment),
	}
	for _, asn := range net.ASNs() {
		org := net.ASes[asn].Org
		e.orgOf[asn] = org
		e.orgAS[org] = append(e.orgAS[org], asn)
	}
	return e
}

// sameOrg reports whether two ASes belong to one organization.
func (e *Engine) sameOrg(a, b topo.ASN) bool {
	return a == b || (e.orgOf[a] != "" && e.orgOf[a] == e.orgOf[b])
}

// orgMembers returns the sibling group of asn (including asn).
func (e *Engine) orgMembers(asn topo.ASN) []topo.ASN {
	if m := e.orgAS[e.orgOf[asn]]; len(m) > 0 {
		return m
	}
	return []topo.ASN{asn}
}

// Advance moves the simulated clock forward.
func (e *Engine) Advance(d time.Duration) {
	e.mu.Lock()
	e.now += d
	e.mu.Unlock()
}

// Now returns the simulated time since start.
func (e *Engine) Now() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Stats returns a snapshot of traffic counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ---------------------------------------------------------------------------
// Forwarding

// pathStep is one router visited by a probe.
type pathStep struct {
	router *topo.Router
	in     *topo.Iface // interface the probe arrived on (nil at the VP router)
	out    *topo.Iface // interface toward the next step (nil at the last)
}

// pathResult is the router-level path a probe would take.
type pathResult struct {
	steps   []pathStep
	reached bool // the probe can be delivered to its destination
	// anchorReplies: the destination prefix's anchor answers echo requests
	// on behalf of covered addresses.
	anchorReplies bool
	// exactIface is non-nil when the destination address is a real router
	// interface (the responder for direct probes).
	exactIface *topo.Iface
}

const (
	maxRouterHops = 128
	maxASHops     = 32
)

// computePath walks the router-level forwarding path from startRouter
// toward dst. Firewalled edges truncate the path (§4 challenge 3).
func (e *Engine) computePath(startRouter topo.RouterID, dst netx.Addr) pathResult {
	var res pathResult
	target := e.Net.IfaceByAddr(dst)
	res.exactIface = target

	prefix, routed := e.Tab.Lookup(dst)
	var rib *bgp.PrefixRIB
	var anchor topo.PrefixAnchor
	var anchorOK bool
	if routed {
		rib = e.Tab.Routes(prefix)
		anchor, anchorOK = e.Net.Anchor(prefix)
		res.anchorReplies = anchorOK && anchor.Replies
	}
	if !routed && target == nil {
		return res // nothing to head toward
	}

	cur := e.Net.Router(startRouter)
	if cur == nil {
		return res
	}
	res.steps = append(res.steps, pathStep{router: cur})
	visitedAS := 0

	for hops := 0; hops < maxRouterHops; hops++ {
		last := &res.steps[len(res.steps)-1]
		r := last.router

		// Firewalled edge: a probe that would continue past this router
		// deeper into its network is discarded. Delivery TO the router
		// itself is allowed.
		if r.Behavior.FirewallEdge && len(res.steps) > 1 {
			prev := res.steps[len(res.steps)-2].router
			enteredFromOutside := prev.Owner != r.Owner
			if enteredFromOutside && !(target != nil && target.Router == r.ID) {
				return res // truncated
			}
		}

		// Delivered?
		if target != nil && target.Router == r.ID {
			res.reached = true
			return res
		}
		if target == nil && routed && anchorOK && anchor.Router == r.ID {
			res.reached = true
			return res
		}

		// Destination interface directly across one of this router's
		// links (e.g. probing the far side of an interdomain link)?
		if target != nil {
			if hop := e.linkHopTo(r, target); hop != nil {
				last.out = hop.out
				res.steps = append(res.steps, pathStep{router: hop.router, in: hop.in})
				continue
			}
		}

		// Next waypoint within the current organization: the target router
		// itself, the near side of the target's link (delivery to the far
		// side of an interconnection subnet goes via the directly attached
		// router), or the prefix anchor.
		var waypoint topo.RouterID = -1
		anchorWaypoint := false
		if target != nil {
			if e.sameOrg(e.Net.Router(target.Router).Owner, r.Owner) {
				waypoint = target.Router
			} else if target.Link != nil {
				for _, lif := range target.Link.Ifaces {
					lr := e.Net.Router(lif.Router)
					if lif != target && lr != nil && e.sameOrg(lr.Owner, r.Owner) {
						waypoint = lr.ID
						break
					}
				}
			}
		}
		if waypoint < 0 && routed && anchorOK &&
			e.sameOrg(e.Net.Router(anchor.Router).Owner, r.Owner) &&
			e.originatesHere(r.Owner, prefix) {
			waypoint = anchor.Router
			anchorWaypoint = true
		}

		if waypoint >= 0 && waypoint != r.ID {
			if !e.stepToward(&res, r, waypoint, prefix) {
				return res
			}
			continue
		}
		if waypoint == r.ID {
			// At the anchor: delivered only when the probe was headed to
			// the anchored prefix itself rather than an interface the
			// routing could not locate from here.
			res.reached = anchorWaypoint && target == nil
			return res
		}

		// Interdomain hop.
		if !routed || rib == nil {
			return res
		}
		if visitedAS++; visitedAS > maxASHops {
			return res
		}
		att, ok := e.chooseEgress(r, prefix, rib)
		if !ok {
			return res
		}
		if att.LocalRtr != r.ID {
			if !e.stepToward(&res, r, att.LocalRtr, prefix) {
				return res
			}
			continue
		}
		// Cross the interdomain link or IXP LAN.
		out := att.Link.IfaceOn(r.ID)
		in := att.Link.IfaceOn(att.RemoteRtr)
		if out == nil || in == nil {
			return res
		}
		last.out = out
		res.steps = append(res.steps, pathStep{router: e.Net.Router(att.RemoteRtr), in: in})
	}
	return res
}

// originatesHere reports whether owner's organization announces prefix, so
// the anchor in this org terminates the path.
func (e *Engine) originatesHere(owner topo.ASN, prefix netx.Prefix) bool {
	for _, j := range e.Tab.OriginIndexes(prefix) {
		if e.sameOrg(e.Tab.ASOf(j), owner) {
			return true
		}
	}
	return false
}

// linkHop describes crossing one link to an adjacent router.
type linkHop struct {
	out, in *topo.Iface
	router  *topo.Router
}

// linkHopTo returns the final hop when the destination interface sits on a
// link directly attached to r.
func (e *Engine) linkHopTo(r *topo.Router, target *topo.Iface) *linkHop {
	if target.Link == nil {
		return nil
	}
	out := target.Link.IfaceOn(r.ID)
	if out == nil || target.Router == r.ID {
		return nil
	}
	return &linkHop{out: out, in: target, router: e.Net.Router(target.Router)}
}

// stepToward advances one internal hop from r toward waypoint, appending
// the step. Returns false when no internal path exists.
func (e *Engine) stepToward(res *pathResult, r *topo.Router, waypoint topo.RouterID, prefix netx.Prefix) bool {
	tree := e.bfsFrom(waypoint)
	nh, ok := tree.nextHopFrom(r.ID)
	if !ok {
		return false
	}
	// Pick the connecting link; parallel links are spread per-prefix so
	// equal-cost paths expose different ingress interfaces (fig. 13 and
	// the analytical alias scenario of §5.4.7).
	links := e.parallelLinks(r.ID, nh)
	if len(links) == 0 {
		return false
	}
	l := links[prefixHash(prefix)%len(links)]
	last := &res.steps[len(res.steps)-1]
	last.out = l.IfaceOn(r.ID)
	res.steps = append(res.steps, pathStep{router: e.Net.Router(nh), in: l.IfaceOn(nh)})
	return true
}

// prefixHash spreads destination prefixes across equal-cost choices.
// Prefix bases are power-of-two aligned, so a plain modulus would collapse
// onto one choice; a multiplicative mix avoids that.
func prefixHash(p netx.Prefix) int {
	h := uint32(p.Base) * 2654435761
	h ^= h >> 13
	return int(h>>16) & 0x7fffffff
}

// parallelLinks lists the internal links directly joining a and b.
func (e *Engine) parallelLinks(a, b topo.RouterID) []*topo.Link {
	var out []*topo.Link
	for _, adj := range e.Net.InternalNeighbors(a) {
		if adj.Peer.Router == b {
			out = append(out, adj.Link)
		}
	}
	return out
}

// chooseEgress applies hot-potato routing: among the attachments of r's AS
// leading to an equal-best next-hop AS (and over which the destination
// prefix is actually announced), pick the border closest to r by IGP
// distance, spreading ties per prefix.
//
// This runs once per router hop of every simulated probe — including every
// alias-resolution probe — so it allocates nothing: candidate and origin
// membership are linear scans over tiny sets, the flattened per-org
// attachment list is cached on the engine, and the tie-broken pick is made
// by counting instead of collecting.
func (e *Engine) chooseEgress(r *topo.Router, prefix netx.Prefix, rib *bgp.PrefixRIB) (topo.Attachment, bool) {
	owner := r.Owner
	single, multi := e.candidateNextHops(owner, rib)
	if single == 0 && len(multi) == 0 {
		return topo.Attachment{}, false
	}
	inCand := func(a topo.ASN) bool {
		if multi == nil {
			return a == single
		}
		for _, c := range multi {
			if c == a {
				return true
			}
		}
		return false
	}
	// Siblings share an IGP: egress over any org member's attachments.
	atts := e.orgAttachments(owner)
	usable := func(att topo.Attachment) (int, bool) {
		if !inCand(att.Remote) {
			return 0, false
		}
		// Selective announcement: the origin announces a pinned prefix
		// only over the designated links (§6).
		if e.Tab.IsOrigin(prefix, att.Remote) && !e.Net.AnnouncedOnLink(prefix, att.Link) {
			return 0, false
		}
		return e.igpDist(r.ID, att.LocalRtr)
	}
	// Pass 1: the best IGP distance and how many attachments tie for it.
	bestDist, ties := -1, 0
	for _, att := range atts {
		d, ok := usable(att)
		if !ok {
			continue
		}
		switch {
		case bestDist < 0 || d < bestDist:
			bestDist, ties = d, 1
		case d == bestDist:
			ties++
		}
	}
	if ties == 0 {
		return topo.Attachment{}, false
	}
	// Pass 2: pick the k-th tying attachment in list order — the same
	// element the collect-then-index implementation chose.
	k := prefixHash(prefix) % ties
	for _, att := range atts {
		if d, ok := usable(att); ok && d == bestDist {
			if k == 0 {
				return att, true
			}
			k--
		}
	}
	return topo.Attachment{}, false // unreachable
}

// orgAttachments returns the concatenated interdomain attachments of every
// member of owner's organization, cached per owner. The slice is shared:
// callers must not mutate it.
func (e *Engine) orgAttachments(owner topo.ASN) []topo.Attachment {
	e.mu.Lock()
	if atts, ok := e.orgAtts[owner]; ok {
		e.mu.Unlock()
		return atts
	}
	e.mu.Unlock()
	var atts []topo.Attachment
	for _, member := range e.orgMembers(owner) {
		atts = append(atts, e.Net.Attachments(member)...)
	}
	e.mu.Lock()
	e.orgAtts[owner] = atts
	e.mu.Unlock()
	return atts
}

// candidateNextHops returns the equal-best next-hop set for the host
// network (multi-exit fidelity) and the canonical next hop elsewhere.
// Sibling chains are followed: a route whose next hop is a sibling
// resolves to the sibling's own next hop (one IGP, one policy).
// Exactly one of the returns is meaningful: multi is non-nil for the host
// org's candidate set (shared slice, do not mutate); otherwise single is
// the canonical next hop, 0 when the prefix is unreachable from owner.
func (e *Engine) candidateNextHops(owner topo.ASN, rib *bgp.PrefixRIB) (single topo.ASN, multi []topo.ASN) {
	if e.sameOrg(owner, e.Net.HostASN) {
		return 0, rib.HostCandidates
	}
	cur := owner
	for hops := 0; hops < 8; hops++ {
		i := e.Tab.IndexOf(cur)
		if i < 0 {
			return 0, nil
		}
		if rib.Class[i] == bgp.ClassNone || rib.Class[i] == bgp.ClassOrigin {
			return 0, nil
		}
		nh := rib.Next[i]
		if nh < 0 {
			return 0, nil
		}
		next := e.Tab.ASOf(nh)
		if !e.sameOrg(next, owner) {
			return next, nil
		}
		cur = next
	}
	return 0, nil
}

// ---------------------------------------------------------------------------
// Intra-AS shortest paths

// bfsTree holds BFS parents toward one root over the internal-link graph.
type bfsTree struct {
	root topo.RouterID
	// next[r] = the neighbor of r one hop closer to root; dist[r] = hops.
	next map[topo.RouterID]topo.RouterID
	dist map[topo.RouterID]int
}

func (t *bfsTree) nextHopFrom(r topo.RouterID) (topo.RouterID, bool) {
	nh, ok := t.next[r]
	return nh, ok
}

// bfsFrom returns (cached) the BFS tree rooted at root over internal links.
func (e *Engine) bfsFrom(root topo.RouterID) *bfsTree {
	e.mu.Lock()
	if t, ok := e.bfs[root]; ok {
		e.mu.Unlock()
		return t
	}
	e.mu.Unlock()

	t := &bfsTree{
		root: root,
		next: make(map[topo.RouterID]topo.RouterID),
		dist: map[topo.RouterID]int{root: 0},
	}
	queue := []topo.RouterID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, adj := range e.Net.InternalNeighbors(cur) {
			nb := adj.Peer.Router
			if _, seen := t.dist[nb]; seen {
				continue
			}
			t.dist[nb] = t.dist[cur] + 1
			t.next[nb] = cur
			queue = append(queue, nb)
		}
	}
	e.mu.Lock()
	e.bfs[root] = t
	e.mu.Unlock()
	return t
}

// igpDist returns the internal hop distance between two routers.
func (e *Engine) igpDist(from, to topo.RouterID) (int, bool) {
	if from == to {
		return 0, true
	}
	t := e.bfsFrom(to)
	d, ok := t.dist[from]
	return d, ok
}
