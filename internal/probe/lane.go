package probe

import (
	"time"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// Lane is a worker-private measurement timeline. The scamper driver probes
// target ASes from several workers at once; with the engine's shared clock
// and shared per-router response state, the interleaving of goroutines
// would leak into IP-ID values, rate-limit windows, and RTTs, making two
// runs of the same world differ at the byte level. A Lane gives each
// worker its own virtual clock (starting at the shared clock's value when
// the run began) plus private IP-ID and rate-limit state, so every trace's
// outcome is a pure function of (destination, lane schedule) — identical
// no matter how the scheduler interleaves workers.
//
// Each worker's lane advances by PacePerHop per probe packet, modelling
// the ~100 packets/second pacing of the paper's deployments; the driver
// merges lane end times with an atomic max to recover the run's simulated
// duration (wall-clock of a real parallel deployment = the slowest
// worker's timeline).
//
// A Lane must not be shared between goroutines.
type Lane struct {
	e     *Engine
	clock time.Duration
	ipid  map[topo.RouterID]*ipidState
	rate  map[topo.RouterID]*rateState
}

// NewLane creates a lane whose clock starts at start (normally the shared
// engine clock when the measurement run begins).
func (e *Engine) NewLane(start time.Duration) *Lane {
	return &Lane{
		e:     e,
		clock: start,
		ipid:  make(map[topo.RouterID]*ipidState),
		rate:  make(map[topo.RouterID]*rateState),
	}
}

// Now returns the lane's virtual clock.
func (l *Lane) Now() time.Duration { return l.clock }

// Lane implements responder over its private state: no locks, no shared
// mutation, deterministic for a fixed probing schedule.
func (l *Lane) now() time.Duration { return l.clock }

func (l *Lane) nextIPID(r *topo.Router, ifc *topo.Iface) uint16 {
	st := l.ipid[r.ID]
	if st == nil {
		st = newIPIDState(r.ID)
		l.ipid[r.ID] = st
	}
	return st.next(r, ifc, l.clock)
}

func (l *Lane) allow(r *topo.Router) bool {
	if r.Behavior.RateLimitPPS <= 0 {
		return true
	}
	st := l.rate[r.ID]
	if st == nil {
		st = &rateState{}
		l.rate[r.ID] = st
	}
	ok := st.allow(r.Behavior.RateLimitPPS, l.clock)
	if !ok {
		l.e.eobs.rateLimitDrops.Inc()
	}
	return ok
}

// TracerouteLane runs a Paris traceroute on the lane's timeline and then
// paces the lane clock forward by PacePerHop per packet sent. The engine's
// shared clock is untouched; the driver advances it once, deterministically,
// after all lanes complete.
func (e *Engine) TracerouteLane(vp *topo.VP, dst netx.Addr, stop func(netx.Addr) bool, lane *Lane) TraceResult {
	res := e.traceroute(vp, dst, stop, lane)
	lane.clock += time.Duration(len(res.Hops)) * PacePerHop
	return res
}
