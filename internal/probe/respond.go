package probe

import (
	"time"

	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// HopType classifies a traceroute hop response.
type HopType int8

// Hop response types.
const (
	HopTimeout      HopType = iota // no response at this TTL
	HopTimeExceeded                // ICMP time exceeded
	HopEchoReply                   // ICMP echo reply (destination reached)
	HopUnreachable                 // ICMP destination unreachable
)

func (t HopType) String() string {
	switch t {
	case HopTimeExceeded:
		return "time-exceeded"
	case HopEchoReply:
		return "echo-reply"
	case HopUnreachable:
		return "unreachable"
	default:
		return "timeout"
	}
}

// Hop is one traceroute response as a prober sees it.
type Hop struct {
	TTL  int
	Addr netx.Addr // response source address; 0 on timeout
	Type HopType
	IPID uint16
	RTT  time.Duration // 0 on timeout
}

// TraceResult is a completed traceroute.
type TraceResult struct {
	VP   string
	Dst  netx.Addr
	Hops []Hop
	// Reached reports an echo reply from the destination.
	Reached bool
	// Stopped reports that the stop-set callback halted probing.
	Stopped bool
	// FaultDropped counts responses the fault injector suppressed during
	// this trace (they appear as timeouts in Hops).
	FaultDropped int
}

// gapLimit mirrors scamper's behaviour of abandoning a trace after five
// consecutive unresponsive hops.
const gapLimit = 5

// PacePerHop is the simulated pacing cost of one traceroute packet
// (~100 packets/second, the rate the paper's deployments probe at).
const PacePerHop = 10 * time.Millisecond

// responder abstracts the stateful response machinery (clock, IP-ID
// generation, rate limiting) so a traceroute can run either against the
// engine's shared measurement timeline or against a worker-private Lane
// (lane.go) whose state is untouched by concurrent probing.
type responder interface {
	now() time.Duration
	nextIPID(r *topo.Router, ifc *topo.Iface) uint16
	allow(r *topo.Router) bool
}

// engineResponder is the shared-clock responder: IP-ID and rate state live
// on the engine, guarded by its mutex.
type engineResponder struct{ e *Engine }

func (rt engineResponder) now() time.Duration { return rt.e.Now() }
func (rt engineResponder) nextIPID(r *topo.Router, ifc *topo.Iface) uint16 {
	return rt.e.nextIPID(r, ifc)
}
func (rt engineResponder) allow(r *topo.Router) bool { return rt.e.allowResponse(r) }

// Traceroute runs a Paris traceroute (ICMP-echo probes) from vp toward dst.
// stop, when non-nil, is consulted with each responding address: returning
// true halts the trace after recording that hop (the doubletree stop set,
// §5.3).
func (e *Engine) Traceroute(vp *topo.VP, dst netx.Addr, stop func(netx.Addr) bool) TraceResult {
	return e.traceroute(vp, dst, stop, engineResponder{e})
}

func (e *Engine) traceroute(vp *topo.VP, dst netx.Addr, stop func(netx.Addr) bool, rt responder) TraceResult {
	e.mu.Lock()
	e.stats.Traceroutes++
	e.mu.Unlock()
	e.eobs.traceroutes.Inc()

	res := TraceResult{VP: vp.Name, Dst: dst}
	path := e.computePath(vp.Router, dst)

	gap := 0
	for i, step := range path.steps {
		hopRTT := e.pathRTT(pathResult{steps: path.steps[:i+1]}, rt.now())
		e.mu.Lock()
		e.stats.PacketsSent++
		e.mu.Unlock()
		e.eobs.packets.Inc()

		final := i == len(path.steps)-1
		hop := Hop{TTL: i + 1, Type: HopTimeout}

		if final && path.reached {
			// The probe reaches its destination; the destination (an
			// interface, or a host behind the prefix anchor) may answer
			// with an echo reply whose source is the probed address.
			if path.exactIface != nil && path.exactIface.Router == step.router.ID {
				if !step.router.Behavior.NoEchoReply && rt.allow(step.router) {
					hop.Type = HopEchoReply
					hop.Addr = dst
					hop.IPID = rt.nextIPID(step.router, path.exactIface)
				}
			} else if path.anchorReplies && rt.allow(step.router) {
				hop.Type = HopEchoReply
				hop.Addr = dst
				hop.IPID = rt.nextIPID(step.router, nil)
			}
			if hop.Type != HopEchoReply && path.reached && step.in != nil &&
				!step.router.Behavior.NoUDPUnreach && rt.allow(step.router) {
				// No host answers behind this prefix: the last router
				// reports the destination unreachable (§5.4.8 accepts
				// these alongside echo replies).
				hop.Type = HopUnreachable
				hop.Addr = step.in.Addr
				hop.IPID = rt.nextIPID(step.router, step.in)
			}
			if hop.Type != HopTimeout && e.dropInjected() {
				hop = Hop{TTL: i + 1, Type: HopTimeout}
				res.FaultDropped++
			}
			e.countHop(hop.Type)
			if hop.Type != HopTimeout {
				hop.RTT = hopRTT
				if hop.Type == HopEchoReply {
					res.Reached = true
				}
				res.Hops = append(res.Hops, hop)
				e.mu.Lock()
				e.stats.ResponsesRcv++
				e.mu.Unlock()
				e.eobs.responses.Inc()
			} else {
				res.Hops = append(res.Hops, hop)
			}
			break
		}

		// Intermediate hop: ICMP time exceeded per the router's behaviour.
		if !step.router.Behavior.NoTTLExpired && rt.allow(step.router) {
			src, ifc := e.ttlExpiredSource(vp, step, path, i)
			if !src.IsZero() {
				hop.Type = HopTimeExceeded
				hop.Addr = src
				hop.IPID = rt.nextIPID(step.router, ifc)
				hop.RTT = hopRTT
			}
		}
		if hop.Type != HopTimeout && e.dropInjected() {
			hop = Hop{TTL: i + 1, Type: HopTimeout}
			res.FaultDropped++
		}
		e.countHop(hop.Type)
		res.Hops = append(res.Hops, hop)
		if hop.Type == HopTimeout {
			if gap++; gap >= gapLimit {
				break
			}
			continue
		}
		gap = 0
		e.mu.Lock()
		e.stats.ResponsesRcv++
		e.mu.Unlock()
		e.eobs.responses.Inc()
		if stop != nil && stop(hop.Addr) {
			res.Stopped = true
			break
		}
	}
	e.eobs.traceHops.Observe(int64(len(res.Hops)))
	return res
}

// ttlExpiredSource selects the source address of a time-exceeded response
// (§4 challenges 1, 2, 4).
func (e *Engine) ttlExpiredSource(vp *topo.VP, step pathStep, path pathResult, idx int) (netx.Addr, *topo.Iface) {
	r := step.router
	switch {
	case r.Behavior.VirtualRouter && step.out != nil:
		// The virtual router that would have forwarded the packet
		// responds: source is the forward egress interface.
		return step.out.Addr, step.out
	case r.Behavior.SourceEgressToProbe:
		// RFC 1812 source selection: the interface transmitting the
		// response, i.e. the first link on this router's path back to
		// the prober. When the best route back runs via a third-party
		// AS that numbered the link, the response maps to that AS.
		back := e.computePath(r.ID, vp.Addr)
		if len(back.steps) > 0 && back.steps[0].out != nil {
			out := back.steps[0].out
			return out.Addr, out
		}
	}
	if step.in != nil {
		return step.in.Addr, step.in // ingress interface: the common case
	}
	// First router (the VP's attachment): respond with any interface.
	if a := r.CanonicalAddr(); !a.IsZero() {
		return a, nil
	}
	return 0, nil
}

// ---------------------------------------------------------------------------
// Direct probes (ping and alias resolution)

// Method is the probe type used against a single address.
type Method int8

// Probe methods, mirroring the probe types bdrmap's alias resolution uses
// (§5.3: "UDP, TCP, ICMP-echo, and TTL-limited probes").
const (
	MethodICMPEcho   Method = iota
	MethodUDP               // UDP to an unused high port (Mercator / Ally-udp)
	MethodTCPAck            // TCP ACK eliciting RST
	MethodTTLLimited        // TTL-limited probe eliciting time exceeded
)

func (m Method) String() string {
	switch m {
	case MethodICMPEcho:
		return "icmp-echo"
	case MethodUDP:
		return "udp"
	case MethodTCPAck:
		return "tcp-ack"
	case MethodTTLLimited:
		return "ttl-limited"
	default:
		return "unknown"
	}
}

// Response is a direct probe's result.
type Response struct {
	OK   bool
	From netx.Addr // source address of the response
	IPID uint16
	When time.Duration // simulated receive time
	RTT  time.Duration // round-trip time under the latency model
}

// Probe sends one probe of the given method from vp to target.
func (e *Engine) Probe(vp *topo.VP, target netx.Addr, m Method) Response {
	e.mu.Lock()
	e.stats.Probes++
	e.stats.PacketsSent++
	e.mu.Unlock()
	e.eobs.probes.Inc()
	e.eobs.packets.Inc()

	path := e.computePath(vp.Router, target)
	if !path.reached || path.exactIface == nil {
		return Response{}
	}
	r := e.Net.Router(path.exactIface.Router)
	if r == nil || !e.allowResponse(r) {
		return Response{}
	}
	b := r.Behavior

	var resp Response
	switch m {
	case MethodICMPEcho:
		if b.NoEchoReply {
			return Response{}
		}
		// The source of an echo reply is the probed destination address,
		// regardless of which interface it sits on (§4 challenge 2).
		resp = Response{OK: true, From: target, IPID: e.nextIPID(r, path.exactIface)}
	case MethodTCPAck:
		if b.NoEchoReply {
			return Response{}
		}
		resp = Response{OK: true, From: target, IPID: e.nextIPID(r, path.exactIface)}
	case MethodUDP:
		if b.NoUDPUnreach {
			return Response{}
		}
		from := target
		if b.MercatorCanonical {
			from = r.CanonicalAddr() // Mercator's common-source signal
		}
		resp = Response{OK: true, From: from, IPID: e.nextIPID(r, path.exactIface)}
	case MethodTTLLimited:
		if b.NoTTLExpired {
			return Response{}
		}
		// A probe sent toward target with TTL set to expire at its
		// router: the time-exceeded source follows ingress selection.
		from := target
		if last := path.steps[len(path.steps)-1]; last.in != nil {
			from = last.in.Addr
		}
		resp = Response{OK: true, From: from, IPID: e.nextIPID(r, path.exactIface)}
	default:
		return Response{}
	}
	if e.dropInjected() {
		return Response{}
	}
	resp.When = e.Now()
	resp.RTT = e.pathRTT(path, resp.When)
	e.mu.Lock()
	e.stats.ResponsesRcv++
	e.mu.Unlock()
	e.eobs.responses.Inc()
	return resp
}

// Reachable reports whether direct probes from vp can be delivered to
// target at all (used by tests; a real prober learns this by probing).
func (e *Engine) Reachable(vp *topo.VP, target netx.Addr) bool {
	p := e.computePath(vp.Router, target)
	return p.reached && p.exactIface != nil
}

// ---------------------------------------------------------------------------
// IP-ID generation and rate limiting

type ipidState struct {
	base    uint16
	bgRate  float64 // background increments per second (traffic the router sends)
	sent    uint32
	perIfc  map[netx.Addr]uint16
	rndSeed uint32
}

// newIPIDState seeds the per-router IP-ID generator state.
func newIPIDState(id topo.RouterID) *ipidState {
	return &ipidState{
		base:    uint16(uint32(id)*2654435761 + 17),
		bgRate:  20 + float64(uint32(id)%180),
		perIfc:  make(map[netx.Addr]uint16),
		rndSeed: uint32(id)*2246822519 + 3,
	}
}

// next draws the next IP-ID per the router's discipline at simulated time
// now. The caller must guarantee exclusive access to st.
func (st *ipidState) next(r *topo.Router, ifc *topo.Iface, now time.Duration) uint16 {
	switch r.Behavior.IPID {
	case topo.IPIDShared:
		// One central counter advanced by everything the router sends,
		// including background traffic proportional to elapsed time.
		bg := uint16(uint64(st.bgRate*now.Seconds()) & 0xffff)
		st.sent++
		return st.base + bg + uint16(st.sent)
	case topo.IPIDPerIface:
		key := netx.Addr(0)
		if ifc != nil {
			key = ifc.Addr
		}
		st.perIfc[key]++
		bg := uint16(uint64(st.bgRate*now.Seconds()) & 0xffff)
		return uint16(uint32(key)*40503) + bg + st.perIfc[key]
	case topo.IPIDRandom:
		st.rndSeed = st.rndSeed*1664525 + 1013904223
		return uint16(st.rndSeed >> 16)
	default: // IPIDZero
		return 0
	}
}

// nextIPID draws the next IP-ID for a response from r on interface ifc
// (ifc may be nil), per the router's IP-ID discipline.
func (e *Engine) nextIPID(r *topo.Router, ifc *topo.Iface) uint16 {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.ipid[r.ID]
	if st == nil {
		st = newIPIDState(r.ID)
		e.ipid[r.ID] = st
	}
	return st.next(r, ifc, e.now)
}

type rateState struct {
	window int64 // second index
	count  int
}

// allow applies the per-second budget at simulated time now. The caller
// must guarantee exclusive access to st.
func (st *rateState) allow(limit int, now time.Duration) bool {
	sec := int64(now / time.Second)
	if st.window != sec {
		st.window = sec
		st.count = 0
	}
	if st.count >= limit {
		return false
	}
	st.count++
	return true
}

// allowResponse applies the router's ICMP rate limit.
func (e *Engine) allowResponse(r *topo.Router) bool {
	if r.Behavior.RateLimitPPS <= 0 {
		return true
	}
	e.mu.Lock()
	st := e.rate[r.ID]
	if st == nil {
		st = &rateState{}
		e.rate[r.ID] = st
	}
	ok := st.allow(r.Behavior.RateLimitPPS, e.now)
	e.mu.Unlock()
	if !ok {
		e.eobs.rateLimitDrops.Inc()
	}
	return ok
}
