package probe

import (
	"testing"
	"time"

	"bdrmap/internal/bgp"
	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

func newEngine(t *testing.T, prof topo.Profile, seed int64) (*Engine, *topo.Network) {
	t.Helper()
	n := topo.Generate(prof, seed)
	tab := bgp.NewTable(n)
	return New(n, tab), n
}

func TestTracerouteReachesCustomers(t *testing.T) {
	e, n := newEngine(t, topo.TinyProfile(), 1)
	vp := n.VPs[0]
	traced := 0
	for _, p := range e.Tab.Prefixes() {
		res := e.Traceroute(vp, p.First()+1, nil)
		if len(res.Hops) > 0 {
			traced++
		}
	}
	if traced < len(e.Tab.Prefixes())/2 {
		t.Fatalf("only %d/%d prefixes produced hops", traced, len(e.Tab.Prefixes()))
	}
}

func TestTracerouteFirstHopIsHostNetwork(t *testing.T) {
	e, n := newEngine(t, topo.TinyProfile(), 2)
	vp := n.VPs[0]
	host := n.ASes[n.HostASN]
	for _, p := range e.Tab.Prefixes()[:10] {
		res := e.Traceroute(vp, p.First()+1, nil)
		if len(res.Hops) == 0 || res.Hops[0].Type != HopTimeExceeded {
			continue
		}
		a := res.Hops[0].Addr
		if !host.Infra.Contains(a) && n.OwnerOfAddr(a) != n.HostASN {
			// The first hop may be in the unannounced host block.
			org, _ := orgOfAddr(n, a)
			if org != "org-host" {
				t.Fatalf("first hop %v not in host network (dst %v)", a, res.Dst)
			}
		}
	}
}

func orgOfAddr(n *topo.Network, a netx.Addr) (string, bool) {
	for _, d := range n.Delegations {
		if d.Prefix.Contains(a) {
			return d.OrgID, true
		}
	}
	return "", false
}

func TestHopAddressesAreRealInterfacesOrDst(t *testing.T) {
	e, n := newEngine(t, topo.TinyProfile(), 3)
	vp := n.VPs[0]
	for _, p := range e.Tab.Prefixes() {
		res := e.Traceroute(vp, p.First()+1, nil)
		for _, h := range res.Hops {
			if h.Type == HopTimeout {
				continue
			}
			if h.Type == HopEchoReply {
				if h.Addr != res.Dst {
					t.Fatalf("echo reply source %v != dst %v", h.Addr, res.Dst)
				}
				continue
			}
			if n.IfaceByAddr(h.Addr) == nil {
				t.Fatalf("hop %v is not a real interface (dst %v)", h.Addr, res.Dst)
			}
		}
	}
}

func TestStopSetHaltsTrace(t *testing.T) {
	e, n := newEngine(t, topo.TinyProfile(), 4)
	vp := n.VPs[0]
	var full TraceResult
	var dst netx.Addr
	for _, p := range e.Tab.Prefixes() {
		r := e.Traceroute(vp, p.First()+1, nil)
		if len(r.Hops) >= 3 && r.Hops[1].Type == HopTimeExceeded {
			full, dst = r, p.First()+1
			break
		}
	}
	if dst.IsZero() {
		t.Skip("no suitable trace found")
	}
	stopAddr := full.Hops[1].Addr
	res := e.Traceroute(vp, dst, func(a netx.Addr) bool { return a == stopAddr })
	if !res.Stopped {
		t.Fatal("trace did not report stopping")
	}
	if got := len(res.Hops); got != 2 {
		t.Fatalf("stopped trace has %d hops, want 2", got)
	}
}

func TestFirewallTruncatesTrace(t *testing.T) {
	// Find a customer whose border firewalls probes: traceroute toward it
	// must never reveal an address inside the customer's announced space.
	e, n := newEngine(t, topo.LargeAccessProfile(), 5)
	vp := n.VPs[0]
	host := n.ASes[n.HostASN]
	checked := 0
	for _, nb := range host.Neighbors() {
		if nb.Rel != topo.RelCustomer {
			continue
		}
		cust := n.ASes[nb.ASN]
		borderFirewalled := false
		for _, r := range cust.Routers {
			if r.Name == "bdr1" && r.Behavior.FirewallEdge && !r.Behavior.NoTTLExpired {
				borderFirewalled = true
			}
		}
		if !borderFirewalled || len(cust.Prefixes) == 0 {
			continue
		}
		res := e.Traceroute(vp, cust.Prefixes[0].First()+1, nil)
		for _, h := range res.Hops {
			if h.Type == HopTimeExceeded && cust.Prefixes[0].Contains(h.Addr) {
				t.Fatalf("firewalled customer %v leaked interior address %v", cust.ASN, h.Addr)
			}
		}
		checked++
		if checked >= 10 {
			break
		}
	}
	if checked == 0 {
		t.Skip("no firewalled customers in this seed")
	}
}

func TestSilentNeighborInvisible(t *testing.T) {
	e, n := newEngine(t, topo.LargeAccessProfile(), 5)
	vp := n.VPs[0]
	host := n.ASes[n.HostASN]
	checked := false
	for _, nb := range host.Neighbors() {
		cust := n.ASes[nb.ASN]
		if nb.Rel != topo.RelCustomer || len(cust.Routers) == 0 {
			continue
		}
		silent := true
		for _, r := range cust.Routers {
			if !r.Behavior.NoTTLExpired || !r.Behavior.NoEchoReply {
				silent = false
			}
		}
		if !silent {
			continue
		}
		res := e.Traceroute(vp, cust.Prefixes[0].First()+1, nil)
		for _, h := range res.Hops {
			if h.Addr != 0 && n.OwnerOfAddr(h.Addr) == cust.ASN {
				t.Fatalf("silent neighbor %v responded at %v", cust.ASN, h.Addr)
			}
		}
		checked = true
	}
	if !checked {
		t.Skip("no fully silent customers in this seed")
	}
}

func TestEchoReplyFromAnchoredPrefix(t *testing.T) {
	e, n := newEngine(t, topo.TinyProfile(), 6)
	vp := n.VPs[0]
	reached := 0
	for _, p := range e.Tab.Prefixes() {
		res := e.Traceroute(vp, p.First()+7, nil)
		if res.Reached {
			reached++
			last := res.Hops[len(res.Hops)-1]
			if last.Type != HopEchoReply || last.Addr != p.First()+7 {
				t.Fatalf("reached trace should end with echo reply from dst")
			}
		}
	}
	if reached == 0 {
		t.Fatal("no destination ever replied")
	}
}

func TestProbeMercatorCanonical(t *testing.T) {
	e, n := newEngine(t, topo.TinyProfile(), 7)
	vp := n.VPs[0]
	// Find a reachable router with MercatorCanonical and two interfaces.
	for _, r := range n.Routers {
		if !r.Behavior.MercatorCanonical || r.Behavior.NoUDPUnreach || len(r.Ifaces) < 2 {
			continue
		}
		a1, a2 := r.Ifaces[0].Addr, r.Ifaces[1].Addr
		if a1.IsZero() || a2.IsZero() || !e.Reachable(vp, a1) || !e.Reachable(vp, a2) {
			continue
		}
		r1 := e.Probe(vp, a1, MethodUDP)
		r2 := e.Probe(vp, a2, MethodUDP)
		if !r1.OK || !r2.OK {
			continue
		}
		if r1.From != r2.From {
			t.Fatalf("mercator sources differ: %v vs %v", r1.From, r2.From)
		}
		return
	}
	t.Skip("no suitable router found")
}

func TestSharedIPIDMonotonic(t *testing.T) {
	e, n := newEngine(t, topo.TinyProfile(), 8)
	vp := n.VPs[0]
	for _, r := range n.Routers {
		if r.Behavior.IPID != topo.IPIDShared || len(r.Ifaces) == 0 {
			continue
		}
		a := r.Ifaces[0].Addr
		if a.IsZero() || !e.Reachable(vp, a) || r.Behavior.NoEchoReply {
			continue
		}
		var prev uint16
		okCount := 0
		for i := 0; i < 10; i++ {
			resp := e.Probe(vp, a, MethodICMPEcho)
			if !resp.OK {
				break
			}
			if okCount > 0 {
				diff := resp.IPID - prev // uint16 wrap-around safe
				if diff == 0 || diff > 1000 {
					t.Fatalf("shared counter not monotonically increasing: %d -> %d", prev, resp.IPID)
				}
			}
			prev = resp.IPID
			okCount++
			e.Advance(10 * time.Millisecond)
		}
		if okCount == 10 {
			return
		}
	}
	t.Skip("no reachable shared-counter router")
}

func TestIPIDAdvancesWithTime(t *testing.T) {
	e, n := newEngine(t, topo.TinyProfile(), 9)
	vp := n.VPs[0]
	for _, r := range n.Routers {
		if r.Behavior.IPID != topo.IPIDShared || len(r.Ifaces) == 0 || r.Behavior.NoEchoReply {
			continue
		}
		a := r.Ifaces[0].Addr
		if a.IsZero() || !e.Reachable(vp, a) {
			continue
		}
		r1 := e.Probe(vp, a, MethodICMPEcho)
		e.Advance(60 * time.Second)
		r2 := e.Probe(vp, a, MethodICMPEcho)
		if !r1.OK || !r2.OK {
			continue
		}
		if r2.IPID-r1.IPID < 100 {
			t.Fatalf("background traffic did not advance counter: %d -> %d", r1.IPID, r2.IPID)
		}
		return
	}
	t.Skip("no reachable shared-counter router")
}

func TestRandomIPIDNotMonotonic(t *testing.T) {
	e, n := newEngine(t, topo.TinyProfile(), 10)
	vp := n.VPs[0]
	for _, r := range n.Routers {
		if r.Behavior.IPID != topo.IPIDRandom || len(r.Ifaces) == 0 || r.Behavior.NoEchoReply {
			continue
		}
		a := r.Ifaces[0].Addr
		if a.IsZero() || !e.Reachable(vp, a) {
			continue
		}
		increasingRuns := 0
		var prev uint16
		for i := 0; i < 30; i++ {
			resp := e.Probe(vp, a, MethodICMPEcho)
			if !resp.OK {
				break
			}
			if i > 0 && resp.IPID-prev < 1000 {
				increasingRuns++
			}
			prev = resp.IPID
		}
		if increasingRuns > 25 {
			t.Fatalf("random IPID looked like a shared counter (%d/30 small increments)", increasingRuns)
		}
		return
	}
	t.Skip("no reachable random-IPID router")
}

func TestRateLimiting(t *testing.T) {
	e, n := newEngine(t, topo.TinyProfile(), 11)
	vp := n.VPs[0]
	// Force a rate limit on the first responding router.
	var target netx.Addr
	var router *topo.Router
	for _, r := range n.Routers {
		if len(r.Ifaces) == 0 || r.Behavior.NoEchoReply {
			continue
		}
		a := r.Ifaces[0].Addr
		if !a.IsZero() && e.Reachable(vp, a) {
			target, router = a, r
			break
		}
	}
	if router == nil {
		t.Skip("no reachable router")
	}
	router.Behavior.RateLimitPPS = 3
	got := 0
	for i := 0; i < 10; i++ {
		if e.Probe(vp, target, MethodICMPEcho).OK {
			got++
		}
	}
	if got != 3 {
		t.Fatalf("rate limit allowed %d responses, want 3", got)
	}
	e.Advance(time.Second)
	if !e.Probe(vp, target, MethodICMPEcho).OK {
		t.Fatal("rate limit did not reset after a second")
	}
}

func TestVirtualRouterRespondsWithForwardIface(t *testing.T) {
	// Hand-build: vp -> r1 -> r2(virtual) -> r3; r2 must answer with its
	// egress interface toward the probed destination.
	n := topo.NewNetwork()
	al := topo.NewAllocator()
	host := n.AddAS(100, topo.TierAccess, "org-host")
	n.HostASN = 100
	hp := al.Next(16)
	host.Prefixes = []netx.Prefix{hp}
	host.Infra = hp
	far := n.AddAS(200, topo.TierStub, "org-far")
	fp := al.Next(16)
	far.Prefixes = []netx.Prefix{fp}
	far.Infra = fp
	n.SetRel(200, 100, topo.RelCustomer)

	r1 := n.AddRouter(100, "r1", 0)
	r2 := n.AddRouter(200, "r2", 0)
	r3 := n.AddRouter(200, "r3", 0)
	n.ConnectPtP(r1, r2, al.Sub(hp, 31), topo.LinkInterdomain, 100)
	l2 := n.ConnectPtP(r2, r3, al.Sub(fp, 31), topo.LinkInternal, 200)
	r2.Behavior.VirtualRouter = true
	n.SetAnchor(fp, r3.ID, true)

	vpLink := al.Sub(hp, 31)
	l := n.AddLink(topo.LinkInternal, vpLink, 100)
	accIf := r1.AddIface(vpLink.First(), l)
	n.RegisterIface(accIf)
	vp := &topo.VP{Name: "vp", Host: 100, Router: r1.ID, Addr: vpLink.First() + 1}
	n.VPs = append(n.VPs, vp)
	n.Build()

	e := New(n, bgp.NewTable(n))
	res := e.Traceroute(vp, fp.First()+100, nil)
	if len(res.Hops) < 2 {
		t.Fatalf("hops = %v", res.Hops)
	}
	wantEgress := l2.IfaceOn(r2.ID).Addr
	if res.Hops[1].Addr != wantEgress {
		t.Fatalf("virtual router answered %v, want forward egress %v", res.Hops[1].Addr, wantEgress)
	}
}

func TestStatsAccumulate(t *testing.T) {
	e, n := newEngine(t, topo.TinyProfile(), 12)
	vp := n.VPs[0]
	e.Traceroute(vp, e.Tab.Prefixes()[0].First()+1, nil)
	s := e.Stats()
	if s.Traceroutes != 1 || s.PacketsSent == 0 {
		t.Fatalf("stats = %+v", s)
	}
}
