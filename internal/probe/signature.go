package probe

import (
	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// PathSignature fingerprints the hop sequence a traceroute from vp toward
// dst would observe *right now*, without sending a single probe packet or
// advancing any clock. It replays the forwarding walk (computePath) and the
// per-hop response-source selection of traceroute — echo reply / destination
// unreachable at the final router, ttlExpiredSource at intermediate ones —
// and folds (ttl, response class, source address) into an FNV-1a hash.
//
// The signature deliberately excludes everything that depends on responder
// *state*: IP-IDs, RTTs, rate-limit budgets, and injected faults. Two worlds
// with the same signature for dst therefore produce traces with identical
// hop/class/address sequences (the byte-identical W1-vs-W4 golden runs pin
// exactly this invariance), which is what lets the incremental driver reuse
// a cached TraceResult when the signature is unchanged between rounds. The
// converse is conservative: a change anywhere on the full path — even past
// the point where a stop set or the gap limit would have truncated the
// cached trace — invalidates the signature and forces a re-walk.
//
// Cost is pure CPU (one memoized-BFS path walk); the engine's bfs cache is
// the only state it touches.
func (e *Engine) PathSignature(vp *topo.VP, dst netx.Addr) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}

	path := e.computePath(vp.Router, dst)
	for i, step := range path.steps {
		typ, addr := HopTimeout, netx.Addr(0)
		if i == len(path.steps)-1 && path.reached {
			// Final hop: mirror traceroute's echo-reply / unreachable
			// selection with the rate limiter assumed open.
			if path.exactIface != nil && path.exactIface.Router == step.router.ID {
				if !step.router.Behavior.NoEchoReply {
					typ, addr = HopEchoReply, dst
				}
			} else if path.anchorReplies {
				typ, addr = HopEchoReply, dst
			}
			if typ != HopEchoReply && step.in != nil && !step.router.Behavior.NoUDPUnreach {
				typ, addr = HopUnreachable, step.in.Addr
			}
		} else if !step.router.Behavior.NoTTLExpired {
			if src, _ := e.ttlExpiredSource(vp, step, path, i); !src.IsZero() {
				typ, addr = HopTimeExceeded, src
			}
		}
		mix(uint64(i + 1))
		mix(uint64(typ) + 1)
		mix(uint64(addr))
	}
	if path.reached {
		mix(1)
	} else {
		mix(2)
	}
	return h
}
