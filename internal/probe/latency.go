package probe

import (
	"sync"
	"time"

	"bdrmap/internal/topo"
)

// Latency model: every link crossing costs a propagation delay derived
// from the geographic distance between its endpoints plus a small
// serialization cost; congested links add queueing delay that varies with
// simulated time of day. This is the substrate for the time-series latency
// probing (TSLP) application of §2 — the CAIDA/MIT interdomain congestion
// project this system was built to serve.

// CongestionEpisode adds queueing delay on one link during a recurring
// daily window. Start and End are offsets within a 24h day of simulated
// time; Queue is the added delay at the episode's peak.
type CongestionEpisode struct {
	Link  *topo.Link
	Start time.Duration // offset into the simulated day
	End   time.Duration
	Queue time.Duration // peak added queueing delay
}

type latencyState struct {
	mu       sync.Mutex
	episodes []CongestionEpisode
}

// InjectCongestion schedules a recurring daily congestion episode on a
// link (traffic exceeding capacity during busy hours, §2).
func (e *Engine) InjectCongestion(ep CongestionEpisode) {
	e.lat.mu.Lock()
	defer e.lat.mu.Unlock()
	e.lat.episodes = append(e.lat.episodes, ep)
}

// ClearCongestion removes all injected episodes.
func (e *Engine) ClearCongestion() {
	e.lat.mu.Lock()
	defer e.lat.mu.Unlock()
	e.lat.episodes = nil
}

// linkDelay returns the one-way delay of crossing link l at simulated
// time now. Annotated links (topo.Annotation, filled by Build) carry their
// latency directly — for generated worlds the annotation reproduces the
// geographic formula byte-for-byte, so annotating changed no RTT — and
// per-interface AttachDelay adds the long-haul circuit of remote-peering
// IXP members on top of the shared fabric's local latency. Unannotated
// links (hand-built test networks that never ran Build) keep the
// geographic formula.
func (e *Engine) linkDelay(l *topo.Link, out, in *topo.Iface, now time.Duration) time.Duration {
	var d time.Duration
	if l != nil && l.Annot.Latency > 0 && out != nil && in != nil && out.Link == l && in.Link == l {
		d = l.Annot.Latency
	} else {
		d = 500 * time.Microsecond // serialization / local hop cost
		if out != nil && in != nil {
			a := e.Net.Router(out.Router)
			b := e.Net.Router(in.Router)
			if a != nil && b != nil {
				diff := a.Longitude - b.Longitude
				if diff < 0 {
					diff = -diff
				}
				// ~0.35ms per degree of longitude: SF–NYC ≈ 17ms one way.
				d += time.Duration(diff * 0.35 * float64(time.Millisecond))
			}
		}
	}
	if out != nil {
		d += out.AttachDelay
	}
	if in != nil {
		d += in.AttachDelay
	}
	d += e.queueDelay(l, now)
	return d
}

// queueDelay returns the congestion-induced queueing delay on l at time
// now (zero when uncongested).
func (e *Engine) queueDelay(l *topo.Link, now time.Duration) time.Duration {
	e.lat.mu.Lock()
	defer e.lat.mu.Unlock()
	if len(e.lat.episodes) == 0 {
		return 0
	}
	tod := now % (24 * time.Hour)
	var q time.Duration
	for _, ep := range e.lat.episodes {
		if ep.Link != l {
			continue
		}
		if tod >= ep.Start && tod < ep.End {
			q += ep.Queue
		}
	}
	return q
}

// pathRTT computes the round-trip time of a probe that traverses the
// given path and returns: twice the one-way sum (the reverse path is
// assumed symmetric, as TSLP assumes for the near/far comparison).
func (e *Engine) pathRTT(path pathResult, now time.Duration) time.Duration {
	var oneWay time.Duration
	for i := 0; i+1 < len(path.steps); i++ {
		out := path.steps[i].out
		in := path.steps[i+1].in
		var l *topo.Link
		if out != nil {
			l = out.Link
		} else if in != nil {
			l = in.Link
		}
		oneWay += e.linkDelay(l, out, in, now)
	}
	// Responder processing cost.
	oneWay += 200 * time.Microsecond
	return 2 * oneWay
}
