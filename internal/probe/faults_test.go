package probe

import (
	"fmt"
	"testing"

	"bdrmap/internal/bgp"
	"bdrmap/internal/faults"
	"bdrmap/internal/obs"
	"bdrmap/internal/topo"
)

// traceAll runs a sequential traceroute sweep and serializes the results.
func traceAll(e *Engine, n *topo.Network, tab *bgp.Table) string {
	out := ""
	for _, p := range tab.Prefixes() {
		res := e.Traceroute(n.VPs[0], p.First()+1, nil)
		out += fmt.Sprintf("%v %v %v:", res.Dst, res.Reached, res.Stopped)
		for _, h := range res.Hops {
			out += fmt.Sprintf(" %d/%d/%v/%d", h.TTL, h.Type, h.Addr, h.IPID)
		}
		out += "\n"
	}
	return out
}

func TestEngineFaultsDeterministic(t *testing.T) {
	run := func() (string, int64, int64) {
		n := topo.Generate(topo.TinyProfile(), 21)
		tab := bgp.NewTable(n)
		e := New(n, tab)
		reg := obs.New()
		e.SetObs(reg)
		e.SetFaults(faults.New(faults.Spec{Seed: 5, ProbeDrop: 0.25}))
		s := traceAll(e, n, tab)
		snap := reg.Snapshot()
		return s, snap.Counter("probe.faults.dropped"), snap.Counter("probe.responses")
	}
	s1, drops1, resp1 := run()
	s2, drops2, _ := run()
	if s1 != s2 {
		t.Fatal("same fault seed produced different traces")
	}
	if drops1 == 0 {
		t.Fatal("no responses dropped at probedrop=0.25")
	}
	if drops1 != drops2 {
		t.Fatalf("drop counts differ: %d vs %d", drops1, drops2)
	}

	// The fault-free run must see strictly more responses.
	n := topo.Generate(topo.TinyProfile(), 21)
	tab := bgp.NewTable(n)
	e := New(n, tab)
	reg := obs.New()
	e.SetObs(reg)
	clean := traceAll(e, n, tab)
	cleanResp := reg.Snapshot().Counter("probe.responses")
	if clean == s1 {
		t.Fatal("faulted run identical to fault-free run")
	}
	if cleanResp <= resp1 {
		t.Fatalf("fault-free responses %d <= faulted %d", cleanResp, resp1)
	}
}

func TestEngineFaultsStopAfterHeal(t *testing.T) {
	n := topo.Generate(topo.TinyProfile(), 22)
	tab := bgp.NewTable(n)
	e := New(n, tab)
	inj := faults.New(faults.Spec{Seed: 5, ProbeDrop: 0.9, ProbeHeal: 3})
	e.SetFaults(inj)
	traceAll(e, n, tab) // burn through the heal budget
	if inj.ProbeDrops() != 3 {
		t.Fatalf("probe drops = %d, heal budget 3", inj.ProbeDrops())
	}
	// A healed injector must never drop again.
	before := inj.ProbeDrops()
	traceAll(e, n, tab)
	if inj.ProbeDrops() != before {
		t.Fatalf("drops grew after healing: %d -> %d", before, inj.ProbeDrops())
	}
	// Direct probes also draw from the (healed) schedule without dropping.
	for _, p := range tab.Prefixes() {
		e.Probe(n.VPs[0], p.First()+1, MethodICMPEcho)
	}
	if inj.ProbeDrops() != before {
		t.Fatal("direct probes dropped after healing")
	}
}
