package probe

import (
	"testing"

	"bdrmap/internal/bgp"
	"bdrmap/internal/netx"
	"bdrmap/internal/topo"
)

// buildFig1 reconstructs the paper's figure 1 scenario: the host X is a
// customer of B only via B's *other* provider path... concretely:
//
//	vp -- r1(X) ==== rb(B) ---- rc(C)        X-B link from X's space
//	                   \ B-C link from C's space; B's route back to the
//	                     VP prefix runs via C (X announces the VP prefix
//	                     selectively, not on the X-B session)
//
// When rb sources TTL-expired responses from its egress toward the
// prober (SourceEgressToProbe) and its best route to the VP runs via C,
// the response carries C's address: a third-party address (§4).
func buildFig1(t *testing.T) (*topo.Network, *Engine, *topo.VP, netx.Addr, netx.Addr) {
	t.Helper()
	n := topo.NewNetwork()
	al := topo.NewAllocator()
	x := n.AddAS(100, topo.TierAccess, "org-x")
	b := n.AddAS(200, topo.TierStub, "org-b")
	c := n.AddAS(300, topo.TierTransit, "org-c")
	n.HostASN = 100
	for _, as := range []*topo.AS{x, b, c} {
		p := al.Next(16)
		as.Prefixes = []netx.Prefix{p}
		as.Infra = p
	}
	// Relationships: B buys from C; X buys from C; X-B are peers.
	n.SetRel(200, 300, topo.RelCustomer)
	n.SetRel(100, 300, topo.RelCustomer)
	n.SetRel(100, 200, topo.RelPeer)

	r1 := n.AddRouter(100, "r1", -100)
	rb := n.AddRouter(200, "rb", -100)
	rc := n.AddRouter(300, "rc", -100)
	rbCore := n.AddRouter(200, "rb-core", -100)

	n.ConnectPtP(r1, rb, al.Sub(x.Infra, 31), topo.LinkInterdomain, 100)
	bc := n.ConnectPtP(rb, rc, al.Sub(c.Infra, 31), topo.LinkInterdomain, 300)
	n.ConnectPtP(rb, rbCore, al.Sub(b.Infra, 31), topo.LinkInternal, 200)
	xc := n.ConnectPtP(r1, rc, al.Sub(c.Infra, 31), topo.LinkInterdomain, 300)
	_ = xc

	rb.Behavior.SourceEgressToProbe = true
	n.SetAnchor(b.Infra, rbCore.ID, true)
	n.SetAnchor(c.Infra, rc.ID, true)

	// VP prefix: a second prefix of X announced only via C (selective
	// announcement), so B's best route back to the VP runs via C.
	vpPfx := al.Next(20)
	x.Prefixes = append(x.Prefixes, vpPfx)
	n.SetAnchor(vpPfx, r1.ID, true)
	n.SetAnchor(x.Infra, r1.ID, true)
	// Pin the VP prefix away from the X-B peering: announce only on the
	// X-C link.
	n.PinPrefix(vpPfx, []*topo.Link{xc})

	vpLink := al.Sub(vpPfx, 31)
	l := n.AddLink(topo.LinkInternal, vpLink, 100)
	accIf := r1.AddIface(vpLink.First(), l)
	n.RegisterIface(accIf)
	vp := &topo.VP{Name: "vp", Host: 100, Router: r1.ID, Addr: vpLink.First() + 1}
	n.VPs = append(n.VPs, vp)
	n.Build()

	e := New(n, bgp.NewTable(n))
	return n, e, vp, b.Infra.First() + 100, bc.IfaceOn(rb.ID).Addr
}

func TestThirdPartySourceAddress(t *testing.T) {
	_, e, vp, dstInB, rbViaC := buildFig1(t)
	res := e.Traceroute(vp, dstInB, nil)
	if len(res.Hops) < 2 {
		t.Fatalf("hops: %+v", res.Hops)
	}
	hop2 := res.Hops[1]
	if hop2.Type != HopTimeExceeded {
		t.Fatalf("hop 2 = %+v", hop2)
	}
	// rb must answer with its interface on the B-C link (C's space): a
	// third-party address per §4 challenge 2.
	if hop2.Addr != rbViaC {
		t.Fatalf("rb answered with %v, want third-party %v", hop2.Addr, rbViaC)
	}
}

func TestIXPLANInboundAddress(t *testing.T) {
	// Traces crossing an IXP LAN must show the far member's LAN address
	// (IXP space) as the inbound interface (§4 challenge 6).
	n := topo.Generate(topo.TinyProfile(), 1)
	e := New(n, bgp.NewTable(n))
	vp := n.VPs[0]
	if len(n.IXPs) == 0 || len(n.Sessions()) == 0 {
		t.Skip("no IXPs in this profile")
	}
	lan := n.IXPs[0].LAN
	found := false
	for _, s := range n.Sessions() {
		peer := s.B
		if s.A != n.HostASN {
			peer = s.A
		}
		p := n.ASes[peer].Prefixes[0]
		res := e.Traceroute(vp, p.First()+1, nil)
		for _, h := range res.Hops {
			if h.Type == HopTimeExceeded && lan.Contains(h.Addr) {
				found = true
				if owner := n.OwnerOfAddr(h.Addr); owner != peer {
					t.Fatalf("LAN hop %v owned by %v, expected member %v", h.Addr, owner, peer)
				}
			}
		}
	}
	if !found {
		t.Error("no trace ever showed an IXP LAN inbound address")
	}
}

func TestUnreachableFromQuietAnchor(t *testing.T) {
	// A trace that reaches a prefix whose anchor does not answer echo
	// requests ends with a destination-unreachable from the last router
	// (the §5.4.8 "other ICMP" signal), unless that router suppresses
	// unreachables too.
	n := topo.Generate(topo.TinyProfile(), 3)
	e := New(n, bgp.NewTable(n))
	vp := n.VPs[0]
	sawUnreachable := false
	for _, p := range e.Tab.Prefixes() {
		res := e.Traceroute(vp, p.First()+3, nil)
		for i, h := range res.Hops {
			if h.Type == HopUnreachable {
				sawUnreachable = true
				if i != len(res.Hops)-1 {
					t.Fatalf("unreachable mid-trace: %+v", res.Hops)
				}
				if res.Reached {
					t.Fatal("trace both reached and unreachable")
				}
				if n.IfaceByAddr(h.Addr) == nil {
					t.Fatalf("unreachable source %v is not a real interface", h.Addr)
				}
				if h.RTT == 0 {
					t.Fatal("unreachable hop missing RTT")
				}
			}
		}
	}
	if !sawUnreachable {
		t.Error("no destination unreachables observed across all prefixes")
	}
}

func TestGapLimitStopsTrace(t *testing.T) {
	// A run of silent routers longer than the gap limit abandons the
	// trace (scamper behaviour).
	n := topo.NewNetwork()
	al := topo.NewAllocator()
	x := n.AddAS(1, topo.TierAccess, "org")
	n.HostASN = 1
	p := al.Next(16)
	x.Prefixes = []netx.Prefix{p}
	x.Infra = p
	var routers []*topo.Router
	for i := 0; i < 10; i++ {
		r := n.AddRouter(1, "r", 0)
		if i > 0 {
			n.ConnectPtP(routers[i-1], r, al.Sub(p, 31), topo.LinkInternal, 1)
		}
		if i >= 2 { // everything past r1 is silent
			r.Behavior.NoTTLExpired = true
			r.Behavior.NoEchoReply = true
		}
		routers = append(routers, r)
	}
	n.SetAnchor(p, routers[9].ID, false)
	vpLink := al.Sub(p, 31)
	l := n.AddLink(topo.LinkInternal, vpLink, 1)
	accIf := routers[0].AddIface(vpLink.First(), l)
	n.RegisterIface(accIf)
	vp := &topo.VP{Name: "vp", Host: 1, Router: routers[0].ID, Addr: vpLink.First() + 1}
	n.VPs = append(n.VPs, vp)
	n.Build()

	e := New(n, bgp.NewTable(n))
	res := e.Traceroute(vp, p.First()+200, nil)
	// 2 responses + gapLimit timeouts, then abandon.
	timeouts := 0
	for _, h := range res.Hops {
		if h.Type == HopTimeout {
			timeouts++
		}
	}
	if timeouts != gapLimit {
		t.Fatalf("timeouts = %d, want gap limit %d (hops %v)", timeouts, gapLimit, res.Hops)
	}
}

func TestParallelLinkSpread(t *testing.T) {
	// Destination-hashed selection over parallel equal-cost links exposes
	// both inbound interfaces of the far router across prefixes (the
	// figure 13 ingredient).
	n := topo.Generate(topo.LargeAccessProfile(), 1)
	e := New(n, bgp.NewTable(n))
	vp := n.VPs[0]
	// Find a host border with two parallel backbone links.
	var twin *topo.Router
	for _, r := range n.Routers {
		if r.Owner != n.HostASN {
			continue
		}
		count := map[topo.RouterID]int{}
		for _, adj := range n.InternalNeighbors(r.ID) {
			count[adj.Peer.Router]++
		}
		for _, c := range count {
			if c >= 2 {
				twin = r
			}
		}
	}
	if twin == nil {
		t.Skip("no parallel links in this seed")
	}
	seen := map[netx.Addr]bool{}
	for _, p := range e.Tab.Prefixes() {
		res := e.Traceroute(vp, p.First()+1, nil)
		for _, h := range res.Hops {
			if h.Type != HopTimeExceeded {
				continue
			}
			if ifc := n.IfaceByAddr(h.Addr); ifc != nil && ifc.Router == twin.ID {
				seen[h.Addr] = true
			}
		}
	}
	if len(seen) >= 2 {
		return // both parallel inbound interfaces observed
	}
	t.Skipf("router %v observed via %d interface(s); acceptable when few prefixes route through it", twin, len(seen))
}
