// Package bdrmap is a reproduction of "bdrmap: Inference of Borders
// Between IP Networks" (IMC 2016): a system that infers, for the network
// hosting a traceroute vantage point, every interdomain link attaching it
// to neighbor networks — at the granularity of individual border routers —
// together with the neighbor AS operating the far side of each link.
//
// The package is the public facade over the full pipeline:
//
//   - a synthetic router-level Internet with the address-assignment
//     conventions and traceroute idiosyncrasies the paper's heuristics
//     exist to handle (internal/topo, internal/probe),
//   - valley-free BGP route computation and a public route-collector view
//     (internal/bgp), AS-relationship inference (internal/asrel), RIR
//     delegations (internal/rir), IXP prefix lists (internal/ixp), and
//     sibling curation (internal/sibling),
//   - the scamper-style measurement driver with doubletree stop sets and
//     alias resolution (internal/scamper, internal/alias),
//   - the border-inference heuristics of §5.4 (internal/core), and
//   - the paper's evaluation harness (internal/eval).
//
// Quickstart:
//
//	world := bdrmap.NewWorld(bdrmap.Tiny(), 1)
//	report := world.MapBorders(0)
//	for _, l := range report.Links {
//		fmt.Println(l)
//	}
package bdrmap

import (
	"fmt"
	"io"
	"sort"
	"time"

	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/export"
	"bdrmap/internal/fleet"
	"bdrmap/internal/mapdb"
	"bdrmap/internal/netx"
	"bdrmap/internal/obs"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// ASN identifies an autonomous system.
type ASN = topo.ASN

// Metrics is a point-in-time copy of the pipeline's observability
// registry: counters, maxes, histograms, and per-stage timers from the
// probe engine, the measurement driver, alias resolution, the inference
// core, and validation. See Snapshot.
type Metrics = obs.Snapshot

// Profile describes a synthetic internetwork scenario.
type Profile = topo.Profile

// Tiny is a minimal world for tests and quickstarts.
func Tiny() Profile { return topo.TinyProfile() }

// RE mirrors the paper's research-and-education validation network (§5.6).
func RE() Profile { return topo.REProfile() }

// SmallAccess mirrors the paper's small access network (§5.6).
func SmallAccess() Profile { return topo.SmallAccessProfile() }

// LargeAccess mirrors the large U.S. access network of §5.6/§6 (19 VPs).
func LargeAccess() Profile { return topo.LargeAccessProfile() }

// Tier1 mirrors the paper's Tier-1 validation network (§5.6).
func Tier1() Profile { return topo.Tier1Profile() }

// Enterprise is a customer-less host network (an extension profile).
func Enterprise() Profile { return topo.EnterpriseProfile() }

// RemotePeering has IXP members peering over long-haul circuits from
// distant metros (an extension profile stressing §5.4's distance
// assumptions).
func RemotePeering() Profile { return topo.RemotePeeringProfile() }

// Hypergiant has one content AS peering with the host and directly with
// most of its customers (hierarchy flattening; an extension profile).
func Hypergiant() Profile { return topo.HypergiantProfile() }

// RouteServerMix mixes hidden route-server and visible bilateral sessions
// at the same IXPs (an extension profile).
func RouteServerMix() Profile { return topo.RouteServerMixProfile() }

// RegionalVP concentrates every VP on the west coast of a wide footprint
// (an extension profile making the figure 15/16 placement effect extreme).
func RegionalVP() Profile { return topo.RegionalVPProfile() }

// ProfileByName looks up any built-in profile (paper validation networks
// and extension scenarios alike) by its Name field; "re" is accepted as
// an alias for "r&e".
func ProfileByName(name string) (Profile, bool) { return topo.ProfileByName(name) }

// ProfileNames lists every built-in profile name, in catalog order.
func ProfileNames() []string {
	ps := topo.BuiltinProfiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// World is one synthetic internetwork plus every input bdrmap needs:
// the public BGP view, inferred AS relationships, RIR delegations, IXP
// prefixes, and the curated sibling set of the hosting network.
type World struct {
	s *eval.Scenario
}

// NewWorld generates a deterministic world from a profile and seed.
func NewWorld(prof Profile, seed int64) *World {
	return &World{s: eval.Build(prof, seed)}
}

// LoadWorld reconstructs a world serialized with SaveWorld (or
// `topogen -save`): the same topology, re-derived inputs, fresh engine.
func LoadWorld(r io.Reader, seed int64) (*World, error) {
	n, err := topo.Load(r)
	if err != nil {
		return nil, err
	}
	return &World{s: eval.BuildFromNetwork(n, seed)}, nil
}

// SaveWorld serializes the world's topology for later LoadWorld.
func (w *World) SaveWorld(out io.Writer) error { return w.s.Net.Save(out) }

// HostASN returns the AS hosting the vantage points.
func (w *World) HostASN() ASN { return w.s.Net.HostASN }

// NumVPs returns the number of vantage points deployed.
func (w *World) NumVPs() int { return len(w.s.Net.VPs) }

// VPName returns the name of vantage point i.
func (w *World) VPName(i int) string { return w.s.Net.VPs[i].Name }

// Scenario exposes the underlying evaluation scenario for advanced use
// (figures, ablations, direct access to the probe engine).
func (w *World) Scenario() *eval.Scenario { return w.s }

// Snapshot copies the world's pipeline metrics. The deterministic portion
// (everything except wall-clock stage timings) is identical across
// repeated runs of the same profile and seed; compare with
// Snapshot().Fingerprint().
func (w *World) Snapshot() Metrics { return w.s.Obs.Snapshot() }

// TraceEvent is one decision-provenance event: a sequenced, simulated-time
// stamped record of what a pipeline stage observed or decided, with the
// evidence behind it as key/value attributes.
type TraceEvent = obs.Event

// TraceEvents returns the provenance events recorded so far, in order.
func (w *World) TraceEvents() []TraceEvent { return w.s.Trace.Events() }

// WriteTrace exports the provenance event log as JSON Lines, one event per
// line, suitable for `bdrmap -explain` over -trace-in.
func (w *World) WriteTrace(out io.Writer) error { return w.s.Trace.WriteJSONL(out) }

// TraceFingerprint hashes the deterministic portion of the provenance log
// (sequence, simulated timestamps, stages, kinds, subjects, and all
// non-volatile attributes). For a fixed profile, seed, and configuration
// it is byte-identical across runs regardless of worker count.
func (w *World) TraceFingerprint() string { return w.s.Trace.Fingerprint() }

// SpanRecord is one completed timeline span — the duration half of the
// observability layer, where TraceEvent is the decision half. Spans form
// a tree (run → round → vp → stage → target, plus remote agents' session
// spans) on the simulated-time axis.
type SpanRecord = obs.SpanRecord

// SpanRecords returns the span tree recorded so far: completed spans in
// completion order followed by the still-open ones (the run root stays
// open for the world's life).
func (w *World) SpanRecords() []SpanRecord { return w.s.Spans.Snapshot() }

// WriteSpans exports the span tree as JSON Lines, one span per line.
func (w *World) WriteSpans(out io.Writer) error { return w.s.Spans.WriteJSONL(out) }

// WriteChromeTrace exports the span tree in Chrome trace_event format —
// load the file in Perfetto (ui.perfetto.dev) or chrome://tracing to see
// where the run's simulated time went.
func (w *World) WriteChromeTrace(out io.Writer) error { return w.s.Spans.WriteChrome(out) }

// ReadSpans loads a span log written by WriteSpans.
func ReadSpans(r io.Reader) ([]SpanRecord, error) { return obs.ReadSpanJSONL(r) }

// SpanFingerprint hashes the deterministic portion of the span tree
// (IDs, parents, names, details, simulated durations, non-volatile
// attrs). For a fixed profile, seed, and configuration it is identical
// across runs, across worker counts, and across repeated runs of one
// healing fault schedule; wall-clock durations are excluded.
func (w *World) SpanFingerprint() string { return w.s.Spans.Fingerprint() }

// Explain renders the evidence chain for one address, address pair, or AS:
// the §5.4 decision that fired, the constraints it consulted, and the
// probe/alias measurements mentioning the subject.
func (w *World) Explain(query string) string {
	return obs.Explain(w.s.Trace.Events(), query)
}

// ReadTrace loads a provenance event log written by WriteTrace (or
// `bdrmap -trace-out`).
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return obs.ReadJSONL(r) }

// ExplainEvents is Explain over a previously exported event log.
func ExplainEvents(events []TraceEvent, query string) string {
	return obs.Explain(events, query)
}

// Link is one inferred interdomain link of the hosting network.
type Link struct {
	// NearAddr is the observed address on the hosting network's border
	// router; FarAddr the neighbor side (zero for silent neighbors).
	NearAddr, FarAddr netx.Addr
	// FarAS is the inferred neighbor AS.
	FarAS ASN
	// Heuristic names the §5.4 rule that attributed the neighbor router.
	Heuristic string
}

// String renders the link.
func (l Link) String() string {
	far := l.FarAddr.String()
	if l.FarAddr.IsZero() {
		far = "(silent)"
	}
	return fmt.Sprintf("%v -> %s  %v  [%s]", l.NearAddr, far, l.FarAS, l.Heuristic)
}

// Report is the outcome of mapping borders from one vantage point.
type Report struct {
	VPName string
	Links  []Link
	// Neighbors lists each inferred neighbor AS with its link count.
	Neighbors map[ASN]int
	// Validation compares against ground truth (§5.6): the fraction of
	// inferred links whose existence and AS are correct.
	Correct, Total int
	// Metrics is the pipeline's observability snapshot taken when the
	// report was assembled (cumulative over the world's runs so far).
	Metrics Metrics

	raw *core.Result
}

// Accuracy returns the validated fraction.
func (r *Report) Accuracy() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Total)
}

// NeighborASes returns inferred neighbors sorted by ASN.
func (r *Report) NeighborASes() []ASN {
	out := make([]ASN, 0, len(r.Neighbors))
	for a := range r.Neighbors {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Raw exposes the underlying inference result.
func (r *Report) Raw() *core.Result { return r.raw }

// Options tunes a mapping run.
type Options struct {
	// Workers parallelizes probing across target ASes (default 4).
	Workers int
	// DisableStopSet turns off the doubletree optimization (§5.3).
	DisableStopSet bool
	// DisableAlias skips alias resolution (exposes the fig. 13 errors).
	DisableAlias bool
	// InferWorkers parallelizes the §5.4 heuristic sweep across routers at
	// equal hop distance (0 or 1 means sequential). The inferred map and
	// its provenance fingerprint are identical for any worker count.
	InferWorkers int
}

// MapBorders measures from vantage point vp and infers the hosting
// network's interdomain links, validating them against ground truth.
func (w *World) MapBorders(vp int) *Report {
	return w.MapBordersOpts(vp, Options{})
}

// MapBordersOpts is MapBorders with tuning options.
func (w *World) MapBordersOpts(vp int, o Options) *Report {
	cfg := scamper.Config{
		Workers:        o.Workers,
		DisableStopSet: o.DisableStopSet,
		DisableAlias:   o.DisableAlias,
	}
	opts := core.Options{
		NoAnalyticalAlias: o.DisableAlias,
		InferWorkers:      o.InferWorkers,
	}
	res := w.s.RunVP(vp, cfg, opts)
	return w.buildReport(res)
}

// RemoteOptions tunes a remote mapping run.
type RemoteOptions struct {
	// DisableStopSet turns off the doubletree optimization (§5.3).
	DisableStopSet bool
	// DisableAlias skips alias resolution (exposes the fig. 13 errors).
	DisableAlias bool
	// FaultSpec injects deterministic transport and probe faults into the
	// remote session (comma-separated key=value syntax, e.g.
	// "seed=11,drop=0.12,heal=40"; see internal/faults). Empty means a
	// clean link.
	FaultSpec string
	// TargetTimeout bounds the wall-clock time spent on one target AS;
	// zero means no limit (the deterministic default).
	TargetTimeout time.Duration
	// InferWorkers is as in Options.
	InferWorkers int
}

// MapBordersRemote measures from vantage point vp over the §5.8
// remote-control protocol: the probing agent runs behind a loopback TCP
// session (optionally degraded by o.FaultSpec) and the hardened
// controller retries, resumes, and — if the session is permanently lost —
// degrades to a partial map. Probing is single-worker so that for a
// fixed world seed and fault spec the report is deterministic.
func (w *World) MapBordersRemote(vp int, o RemoteOptions) (*Report, error) {
	cfg := scamper.Config{
		Workers:        1,
		DisableStopSet: o.DisableStopSet,
		DisableAlias:   o.DisableAlias,
		TargetTimeout:  o.TargetTimeout,
	}
	opts := core.Options{
		NoAnalyticalAlias: o.DisableAlias,
		InferWorkers:      o.InferWorkers,
	}
	res, err := w.s.RunVPRemote(vp, cfg, opts, o.FaultSpec)
	if err != nil {
		return nil, err
	}
	return w.buildReport(res), nil
}

// buildReport validates an inference result and shapes it for callers.
func (w *World) buildReport(res *core.Result) *Report {
	v := w.s.Validate(res)
	rep := &Report{
		VPName:    res.VPName,
		Neighbors: make(map[ASN]int),
		Correct:   v.Correct,
		Total:     v.Total,
		raw:       res,
	}
	for _, l := range res.Links {
		rep.Links = append(rep.Links, Link{
			NearAddr:  l.NearAddr,
			FarAddr:   l.FarAddr,
			FarAS:     l.FarAS,
			Heuristic: string(l.Heuristic),
		})
		rep.Neighbors[l.FarAS]++
	}
	sort.Slice(rep.Links, func(i, j int) bool {
		if rep.Links[i].FarAS != rep.Links[j].FarAS {
			return rep.Links[i].FarAS < rep.Links[j].FarAS
		}
		return rep.Links[i].NearAddr < rep.Links[j].NearAddr
	})
	rep.Metrics = w.Snapshot()
	return rep
}

// FleetOptions tunes a coordinated multi-VP mapping run. The zero value
// runs every VP locally on one worker in VP order — and produces exactly
// the same map as any other worker count.
type FleetOptions struct {
	// Workers bounds how many vantage points measure concurrently
	// (default 1). The merged map, per-VP reports, and trace/span
	// fingerprints are byte-identical for any worker count.
	Workers int
	// Quorum, when in [1, NumVPs-1], delivers a partial merged generation
	// through OnPublish once that many VPs complete, naming the rest
	// degraded; the final (full) generation always follows. 0 disables
	// partial publishing.
	Quorum int
	// Retries is each VP's budget of extra attempts after a failed one
	// (only remote/faulted transports can fail).
	Retries int
	// StragglerTimeout is how long the coordinator waits after quorum
	// before publishing the partial generation (0 = immediately).
	StragglerTimeout time.Duration
	// OnPublish receives the quorum-time partial and the final merged
	// generations, on the coordinator goroutine.
	OnPublish func(fleet.PublishEvent)
}

// MapAll runs MapBorders from every vantage point. It is the one-worker
// case of MapAllFleet: a local fleet cannot fail.
func (w *World) MapAll() []*Report {
	reps, err := w.MapAllFleet(FleetOptions{})
	if err != nil {
		panic(fmt.Sprintf("bdrmap: MapAll: %v", err))
	}
	return reps
}

// MapAllFleet measures every vantage point through the fleet coordinator:
// a bounded work-stealing worker pool with per-VP retry budgets, streaming
// merge, and optional quorum publishing. Reports are indexed by VP.
func (w *World) MapAllFleet(o FleetOptions) ([]*Report, error) {
	_, err := w.s.RunFleet(scamper.Config{}, eval.FleetOptions{
		Workers:          o.Workers,
		Quorum:           o.Quorum,
		Retries:          o.Retries,
		StragglerTimeout: o.StragglerTimeout,
		OnPublish:        o.OnPublish,
	})
	if err != nil {
		return nil, err
	}
	out := make([]*Report, w.NumVPs())
	for i, res := range w.s.Results {
		if res == nil {
			continue // shard failed with nothing salvaged
		}
		out[i] = w.buildReport(res)
	}
	return out, nil
}

// BuildMapDB measures from every vantage point (if not already done) and
// compiles the inference output into an immutable mapdb.Snapshot — the
// query-optimised form served by bdrmapd and consumed by tslpmon.
func (w *World) BuildMapDB() *mapdb.Snapshot {
	w.MapAll()
	return mapdb.Compile(w.s.Net.HostASN, w.s.Results)
}

// MergedMap measures from every vantage point and merges the per-VP
// inferences into one network-wide border map, the way the paper's
// multi-VP deployment (§6) and the congestion project (§2) operate.
func (w *World) MergedMap() *core.MergedMap {
	w.MapAll()
	return core.Merge(w.s.Results)
}

// Export writes one VP's traces and inferences as JSON Lines.
func (w *World) Export(vp int, out io.Writer) error {
	w.MapBorders(vp)
	x := export.NewWriter(out)
	x.Meta(export.Meta{VPName: w.VPName(vp), HostASN: w.HostASN()})
	for _, tr := range w.s.Datasets[vp].Traces {
		x.Trace(tr)
	}
	x.Result(w.s.Results[vp])
	return x.Flush()
}

// ExportMerged measures every VP and writes the merged map as JSON Lines
// (the round artifact the continuous-monitoring pipeline diffs).
func (w *World) ExportMerged(out io.Writer) error {
	m := w.MergedMap()
	x := export.NewWriter(out)
	x.Meta(export.Meta{VPName: "merged", HostASN: w.HostASN()})
	x.Merged(m)
	return x.Flush()
}

// Table1 renders the paper's Table 1 for vantage point vp (which must
// have been mapped already, or it is mapped now).
func (w *World) Table1(vp int) string {
	res := w.s.RunVP(vp, scamper.Config{}, core.Options{})
	return eval.BuildTable1(w.s, res).Format()
}
