package bdrmap_test

import (
	"fmt"

	"bdrmap"
)

// ExampleNewWorld maps the borders of a small synthetic network and
// validates the result against ground truth.
func ExampleNewWorld() {
	world := bdrmap.NewWorld(bdrmap.Tiny(), 1)
	report := world.MapBorders(0)
	fmt.Printf("neighbors: %d\n", len(report.Neighbors))
	fmt.Printf("all correct: %v\n", report.Correct == report.Total)
	// Output:
	// neighbors: 12
	// all correct: true
}

// ExampleWorld_MergedMap merges every vantage point's view into one
// network-wide border map.
func ExampleWorld_MergedMap() {
	world := bdrmap.NewWorld(bdrmap.Tiny(), 1)
	m := world.MergedMap()
	fmt.Printf("links >= neighbors: %v\n", m.LinkCount() >= len(m.Neighbors))
	// Output:
	// links >= neighbors: true
}

// ExampleLink_String shows how links render.
func ExampleLink_String() {
	l := bdrmap.Link{FarAS: 64500, Heuristic: "silent"}
	fmt.Println(l)
	// Output:
	// 0.0.0.0 -> (silent)  AS64500  [silent]
}
