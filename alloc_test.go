package bdrmap

import (
	"testing"

	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/obs"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// Alloc-budget tests: allocation regressions on the inference hot path
// fail `go test` here instead of only drifting benchmark numbers. The
// budgets are ceilings over today's steady-state counts (see t.Logf
// output) with headroom for incidental churn — a per-node map or
// per-claim string concat sneaking back in blows well past them.

// tinyInput builds the inference input for the tiny scenario's first VP
// backed by an explicit arena.
func tinyInput(t testing.TB, ar *core.Arena) (core.Input, *core.Result) {
	s := eval.Build(topo.TinyProfile(), 1)
	s.RunVP(0, scamper.Config{Workers: 1}, core.Options{})
	in := core.Input{
		Data: s.Datasets[0], View: s.View, Rel: s.Rel, RIR: s.RIR, IXP: s.IXP,
		HostASN: s.Net.HostASN, Siblings: s.Sibs, Arena: ar,
	}
	return in, s.Results[0]
}

// TestInferAllocBudget pins the per-claim allocation cost of a
// steady-state inference (warm arena, tracing off) on the tiny scenario.
func TestInferAllocBudget(t *testing.T) {
	var ar core.Arena
	in, _ := tinyInput(t, &ar)
	res := core.Infer(in) // warm the arena
	claims := 0
	for _, rn := range res.Routers {
		if rn.Owner != 0 {
			claims++
		}
	}
	if claims == 0 {
		t.Fatal("no routers attributed")
	}
	allocs := testing.AllocsPerRun(20, func() { core.Infer(in) })
	perClaim := allocs / float64(claims)
	t.Logf("steady-state: %.0f allocs/run over %d claims = %.2f allocs/claim", allocs, claims, perClaim)
	// Steady state measures ~7 allocs per claimed router, all in result
	// assembly (RouterNode, its address slice, link records); the claim
	// itself is allocation-free.
	const budget = 9.0
	if perClaim > budget {
		t.Errorf("inference allocates %.2f allocs per claim, budget %.1f", perClaim, budget)
	}
}

// TestSpliceAllocBudget is the Input.Prev regression test: an incremental
// re-inference with an unchanged world must splice through the intern
// table — no per-node maps, no per-node address re-resolution. A map
// creeping back into the splice path costs ≥2 allocs per router and
// blows the budget.
func TestSpliceAllocBudget(t *testing.T) {
	state := scamper.NewRoundState()
	s1 := eval.Build(topo.TinyProfile(), 1)
	cfg := scamper.Config{Workers: 1}
	prev := s1.RunVPIncremental(0, cfg, core.Options{}, state, nil)

	// Round 2 on the unchanged world: everything replays from cache and
	// the dirty-address set comes out (near) empty.
	s2 := eval.BuildFromNetwork(s1.Net, 1)
	s2.RunVPIncremental(0, cfg, core.Options{}, state, prev)
	ds := s2.Datasets[0]
	if ds.Dirty == nil {
		t.Fatal("round 2 produced no dirty set; cross-round caching is off")
	}

	var ar core.Arena
	reg := obs.New()
	in := core.Input{
		Data: ds, View: s2.View, Rel: s2.Rel, RIR: s2.RIR, IXP: s2.IXP,
		HostASN: s2.Net.HostASN, Siblings: s2.Sibs,
		Prev: prev, Arena: &ar, Obs: reg,
	}
	res := core.Infer(in) // warm the arena; count splices
	spliced := reg.Snapshot().Counter("core.inc.spliced")
	if spliced == 0 {
		t.Fatal("unchanged world spliced no routers")
	}
	in.Obs = nil
	allocs := testing.AllocsPerRun(20, func() { core.Infer(in) })
	perRouter := allocs / float64(len(res.Routers))
	t.Logf("spliced re-inference: %.0f allocs/run, %d routers (%d spliced) = %.2f allocs/router",
		allocs, len(res.Routers), spliced, perRouter)
	const budget = 9.0
	if perRouter > budget {
		t.Errorf("spliced re-inference allocates %.2f allocs per router, budget %.1f", perRouter, budget)
	}
}
