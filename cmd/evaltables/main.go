// Command evaltables regenerates every table and figure of the paper's
// evaluation on the synthetic substrate:
//
//	-table1     Table 1 for the R&E, large access, and Tier-1 networks
//	-validate   the §5.6 ground-truth validation for all four networks
//	-fig14      Figure 14 (egress diversity across 19 VPs)
//	-fig15      Figure 15 (marginal utility of VPs)
//	-fig16      Figure 16 (geographic spread of observed links)
//	-stopset    §5.3 stop-set efficiency
//	-ablations  the DESIGN.md ablation suite
//	-all        everything above
package main

import (
	"flag"
	"fmt"

	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "regenerate Table 1")
		validate  = flag.Bool("validate", false, "regenerate the §5.6 validation")
		fig14     = flag.Bool("fig14", false, "regenerate Figure 14")
		fig15     = flag.Bool("fig15", false, "regenerate Figure 15")
		fig16     = flag.Bool("fig16", false, "regenerate Figure 16")
		stopset   = flag.Bool("stopset", false, "stop-set efficiency")
		ablations = flag.Bool("ablations", false, "ablation suite")
		sweep     = flag.Bool("sweep", false, "§5.7 multi-network sweep")
		all       = flag.Bool("all", false, "run everything")
		seed      = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()
	if *all {
		*table1, *validate, *fig14, *fig15, *fig16, *stopset, *ablations, *sweep =
			true, true, true, true, true, true, true, true
	}
	if !(*table1 || *validate || *fig14 || *fig15 || *fig16 || *stopset || *ablations || *sweep) {
		flag.Usage()
		return
	}

	if *table1 {
		fmt.Println("== Table 1 ==")
		for _, prof := range []topo.Profile{topo.REProfile(), topo.LargeAccessProfile(), topo.Tier1Profile()} {
			s := eval.Build(prof, *seed)
			res := s.RunVP(0, scamper.Config{}, core.Options{})
			fmt.Println(eval.BuildTable1(s, res).Format())
		}
	}
	if *validate {
		fmt.Println("== §5.6 validation ==")
		for _, prof := range []topo.Profile{topo.REProfile(), topo.LargeAccessProfile(),
			topo.Tier1Profile(), topo.SmallAccessProfile()} {
			s := eval.Build(prof, *seed)
			res := s.RunVP(0, scamper.Config{}, core.Options{})
			v := s.Validate(res)
			found, total := s.Coverage(res)
			ixpOK, ixpTotal := s.ValidateIXP(res)
			fmt.Printf("%-14s links correct %4d/%4d = %5.1f%%   BGP coverage %3d/%3d = %5.1f%%   IXP-published %d/%d\n",
				prof.Name, v.Correct, v.Total, 100*v.Accuracy(),
				found, total, 100*float64(found)/float64(total), ixpOK, ixpTotal)
		}
		fmt.Println()
	}

	var multi *eval.Scenario
	needMulti := *fig14 || *fig15 || *fig16
	if needMulti {
		fmt.Println("(measuring from all 19 VPs of the large access network...)")
		multi = eval.Build(topo.LargeAccessProfile(), *seed)
		multi.RunAll(scamper.Config{})
	}
	if *fig14 {
		fmt.Println("== Figure 14 ==")
		fmt.Println(eval.BuildFigure14(multi).Format())
	}
	if *fig15 {
		fmt.Println("== Figure 15 ==")
		fmt.Println(eval.BuildFigure15(multi).Format())
	}
	if *fig16 {
		fmt.Println("== Figure 16 ==")
		fmt.Println(eval.BuildFigure16(multi).Format())
	}
	if *stopset {
		fmt.Println("== Stop-set efficiency (§5.3) ==")
		ss := eval.MeasureStopSet(topo.REProfile(), *seed)
		fmt.Printf("packets with stop set %d, without %d: saved %.1f%% (%d traces stopped)\n\n",
			ss.PacketsWith, ss.PacketsWithout, 100*ss.SavedFrac(), ss.TracesStopped)
	}
	if *ablations {
		fmt.Println("== Ablations ==")
		// No-alias runs on the large access network, where parallel links
		// and unresponsive counters make the fig. 13 inflation visible;
		// third-party detection matters most in the Tier-1 network.
		for _, a := range []eval.Ablation{
			eval.AblationNoAlias(topo.LargeAccessProfile(), *seed),
			eval.AblationNoThirdParty(topo.Tier1Profile(), *seed),
			eval.AblationSingleAddr(topo.REProfile(), *seed),
		} {
			fmt.Printf("%-26s accuracy %.3f -> %.3f   links %d -> %d\n",
				a.Name, a.BaseAcc, a.VariantAcc, a.BaseLinks, a.VariantLinks)
		}
		ar := eval.MeasureAllyRounds(topo.REProfile(), *seed)
		fmt.Printf("ally-rounds: 5 rounds %d positives (%d false), 1 round %d positives (%d false)\n",
			ar.RoundsFive.Positives, ar.RoundsFive.FalsePositives,
			ar.RoundsOne.Positives, ar.RoundsOne.FalsePositives)
	}
	if *sweep {
		fmt.Println("\n== §5.7 multi-network sweep ==")
		sw := eval.Sweep(
			[]topo.Profile{topo.REProfile(), topo.SmallAccessProfile(), topo.EnterpriseProfile(), topo.TinyProfile()},
			[]int64{*seed, *seed + 1, *seed + 2, *seed + 3, *seed + 4, *seed + 5},
		)
		fmt.Println(sw.Format())
	}
}
