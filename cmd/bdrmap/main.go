// Command bdrmap runs the full border-mapping pipeline on a synthetic
// internetwork and prints the inferred interdomain links of the hosting
// network, optionally with the paper's Table 1, a ground-truth validation
// summary, a merged multi-VP map, JSONL export, and the §5.1-style DNS
// sanity check.
//
// Usage:
//
//	bdrmap [-profile tiny|re|small-access|large-access|tier1|enterprise|
//	                 remote-peering|hypergiant|route-server|regional-vp]
//	       [-topo saved.world] [-seed N] [-vp N]
//	       [-table1] [-merged] [-o out.jsonl] [-dnscheck]
//	       [-remote] [-faults spec] [-target-timeout d]
//	       [-explain query] [-trace-out log.jsonl] [-trace-in log.jsonl]
//	       [-no-alias] [-no-stopset] [-metrics] [-v]
//
// -remote runs the measurement over the §5.8 remote-control protocol (an
// in-process agent behind loopback TCP); -faults degrades that session
// with a deterministic fault spec (see internal/faults) and implies
// -remote.
//
// -explain renders the decision-provenance evidence chain for an address,
// address pair, or AS. -trace-out exports the full event log as JSON
// Lines; -trace-in answers -explain from such a log without measuring.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bdrmap"
	"bdrmap/internal/dns"
)

func main() {
	var (
		profile   = flag.String("profile", "tiny", "scenario profile (tiny, re, ... — see -profile help on error for the full catalog)")
		seed      = flag.Int64("seed", 1, "topology generation seed")
		vp        = flag.Int("vp", 0, "vantage point index")
		table1    = flag.Bool("table1", false, "print the paper's Table 1")
		noAlias   = flag.Bool("no-alias", false, "disable alias resolution")
		noStopSet = flag.Bool("no-stopset", false, "disable the doubletree stop set")
		dnsCheck  = flag.Bool("dnscheck", false, "development-mode DNS sanity check (§5.1)")
		jsonOut   = flag.String("o", "", "export traces and inferences as JSON Lines to this file")
		topoFile  = flag.String("topo", "", "measure a world saved with topogen -save instead of generating one")
		merged    = flag.Bool("merged", false, "measure from every VP and print the merged map")
		metrics   = flag.Bool("metrics", false, "print the pipeline observability snapshot")
		verbose   = flag.Bool("v", false, "print every inferred link")
		remote    = flag.Bool("remote", false, "probe over the §5.8 remote-control protocol")
		faultSpec = flag.String("faults", "", "fault-injection spec for the remote session, e.g. seed=11,drop=0.12,heal=40 (implies -remote)")
		targetTO  = flag.Duration("target-timeout", 0, "wall-clock budget per target AS in remote mode (0 = unlimited)")
		explain   = flag.String("explain", "", "render the evidence chain for an address, address pair, or AS (e.g. 10.0.0.1 or AS20)")
		traceOut  = flag.String("trace-out", "", "write the decision-provenance event log as JSON Lines to this file")
		traceIn   = flag.String("trace-in", "", "explain from a previously exported event log instead of running the pipeline (requires -explain)")
	)
	flag.Parse()

	// Offline explain: answer from an exported log, no measurement at all.
	if *traceIn != "" {
		if *explain == "" {
			fmt.Fprintln(os.Stderr, "-trace-in requires -explain")
			os.Exit(2)
		}
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		events, err := bdrmap.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(bdrmap.ExplainEvents(events, *explain))
		return
	}

	var world *bdrmap.World
	prof, err := profileByName(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *topoFile != "" {
		f, err := os.Open(*topoFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		world, err = bdrmap.LoadWorld(f, *seed)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		prof.Name = *topoFile
	} else {
		world = bdrmap.NewWorld(prof, *seed)
	}
	if *vp < 0 || *vp >= world.NumVPs() {
		fmt.Fprintf(os.Stderr, "vp %d out of range (0..%d)\n", *vp, world.NumVPs()-1)
		os.Exit(2)
	}

	fmt.Printf("profile=%s seed=%d host=%v vps=%d\n",
		prof.Name, *seed, world.HostASN(), world.NumVPs())

	var rep *bdrmap.Report
	if *remote || *faultSpec != "" {
		var err error
		rep, err = world.MapBordersRemote(*vp, bdrmap.RemoteOptions{
			DisableAlias:   *noAlias,
			DisableStopSet: *noStopSet,
			FaultSpec:      *faultSpec,
			TargetTimeout:  *targetTO,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if lost := world.Scenario().Datasets[*vp].Stats.TargetsLost; lost > 0 {
			fmt.Printf("remote session degraded: %d target(s) abandoned\n", lost)
		}
	} else {
		rep = world.MapBordersOpts(*vp, bdrmap.Options{
			DisableAlias:   *noAlias,
			DisableStopSet: *noStopSet,
		})
	}
	fmt.Printf("vantage point %s: %d interdomain links, %d neighbor ASes (simulated run time %v)\n",
		rep.VPName, len(rep.Links), len(rep.Neighbors),
		world.Scenario().Datasets[*vp].Stats.SimDuration.Round(time.Minute))
	fmt.Printf("validation vs ground truth: %d/%d = %.1f%%\n",
		rep.Correct, rep.Total, 100*rep.Accuracy())

	if *verbose {
		for _, l := range rep.Links {
			fmt.Println("  ", l)
		}
	}
	if *table1 {
		fmt.Println()
		fmt.Println(world.Table1(*vp))
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := world.Export(*vp, f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("exported to %s\n", *jsonOut)
	}
	if *merged {
		m := world.MergedMap()
		fmt.Printf("\nmerged map over %d VPs: %d links, %d neighbors\n",
			len(m.VPs), m.LinkCount(), len(m.Neighbors))
		if *verbose {
			for _, l := range m.Links {
				fmt.Printf("  %v [%s] seen by %d VP(s)\n", l.Key, l.Heuristic, len(l.SeenBy))
			}
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut + ".merged")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := world.ExportMerged(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("merged map exported to %s.merged\n", *jsonOut)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := world.WriteTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("trace written to %s (fingerprint %s)\n", *traceOut, world.TraceFingerprint())
	}
	if *explain != "" {
		fmt.Println()
		fmt.Print(world.Explain(*explain))
	}
	if *metrics {
		fmt.Println("\npipeline metrics:")
		fmt.Print(world.Snapshot().Format())
	}
	if *dnsCheck {
		zone := dns.FromNetwork(world.Scenario().Net, *seed)
		sanity := dns.SanityCheck(rep.Raw(), zone)
		fmt.Printf("\nDNS sanity check (development mode, §5.1): agree=%d disagree=%d no-hint=%d (%.1f%% agreement)\n",
			sanity.Agree, sanity.Disagree, sanity.NoHint, 100*sanity.AgreeFrac())
		for _, sus := range sanity.Suspects {
			fmt.Printf("  investigate %v (%s): inferred %v, DNS says %v\n",
				sus.Addr, sus.Name, sus.Inferred, sus.DNSHint)
		}
	}
}

func profileByName(name string) (bdrmap.Profile, error) {
	if prof, ok := bdrmap.ProfileByName(name); ok {
		return prof, nil
	}
	return bdrmap.Profile{}, fmt.Errorf("unknown profile %q (have: %s)",
		name, strings.Join(bdrmap.ProfileNames(), ", "))
}
