package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/mapdb"
	"bdrmap/internal/obs"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// get performs one request against the assembled mux and decodes the body.
func get(t *testing.T, mux *http.ServeMux, path string) (int, map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("GET %s: non-JSON body %q: %v", path, rec.Body.String(), err)
	}
	return rec.Code, body
}

// errCode digs the structured error code out of a JSON error body.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("body has no error object: %v", body)
	}
	code, _ := e["code"].(string)
	return code
}

// TestMuxServesMapAndStructuredErrors drives the daemon's HTTP surface
// end to end: obs JSON on /, map queries under /v1/, and structured JSON
// error bodies (never bare text) on every failure path.
func TestMuxServesMapAndStructuredErrors(t *testing.T) {
	reg := obs.New()
	store := mapdb.NewStore(0, reg)
	mux := newMux(reg, store, obs.NewSpanLog(0), false)

	// Before the first publish the query API is up but empty.
	if code, body := get(t, mux, "/v1/gen"); code != http.StatusServiceUnavailable || errCode(t, body) != "no_generation" {
		t.Fatalf("pre-publish /v1/gen = %d %v", code, body)
	}

	// Publish a real inference round, as main does after core.Infer.
	s := eval.Build(topo.TinyProfile(), 1)
	s.RunAll(scamper.Config{})
	store.Publish(mapdb.Compile(s.Net.HostASN, []*core.Result{s.Results[0]}))

	if code, body := get(t, mux, "/v1/gen"); code != http.StatusOK || body["gen"] != float64(1) {
		t.Fatalf("/v1/gen = %d %v", code, body)
	}
	// A served link resolves through /v1/owner with the inferred AS.
	snap := store.Current()
	links := snap.Links()
	if len(links) == 0 {
		t.Fatal("published snapshot has no links")
	}
	far := links[0].Far
	code, body := get(t, mux, "/v1/owner?ip="+far.String())
	if code != http.StatusOK {
		t.Fatalf("/v1/owner = %d %v", code, body)
	}

	// Structured errors: bad input, unknown interface, unknown path.
	if code, body := get(t, mux, "/v1/owner?ip=not-an-ip"); code != http.StatusBadRequest || errCode(t, body) != "bad_address" {
		t.Fatalf("bad ip = %d %v", code, body)
	}
	if code, body := get(t, mux, "/v1/owner?ip=203.0.113.250"); code != http.StatusNotFound || errCode(t, body) != "unknown_interface" {
		t.Fatalf("unknown interface = %d %v", code, body)
	}
	if code, body := get(t, mux, "/nope"); code != http.StatusNotFound || errCode(t, body) != "not_found" {
		t.Fatalf("unknown path = %d %v", code, body)
	}

	// The registry root still serves the obs snapshot at exactly "/".
	if code, body := get(t, mux, "/"); code != http.StatusOK || body["counters"] == nil {
		t.Fatalf("obs root = %d %v", code, body)
	}
}
