// Command bdrmapd is the central system of §5.8: it listens for callback
// connections from thin probing agents running on resource-limited
// devices, drives the full measurement schedule over each connection, runs
// border inference centrally, and prints the result.
//
// For a self-contained demonstration, -demo spawns an in-process agent
// connected over loopback TCP, mirroring the BISmark deployment where the
// device only executes probe commands while the central system keeps all
// state (the paper measured 3.5MB on-device vs ~150MB centrally).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"time"

	"bdrmap/internal/asrel"
	"bdrmap/internal/bgp"
	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/faults"
	"bdrmap/internal/mapdb"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// newMux assembles bdrmapd's HTTP surface: the obs registry as JSON on /,
// Prometheus text on /metrics, the border-map query API plus the live
// /v1/status ops surface under /v1/, and optionally net/http/pprof. Every
// error answer — including the catch-all 404 — is a structured JSON
// {"error":{"code","message"}} body.
func newMux(reg *obs.Registry, store *mapdb.Store, spans *obs.SpanLog, pprofOn bool) *http.ServeMux {
	mux := http.NewServeMux()
	obsHandler := obs.Handler(reg)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			mapdb.WriteError(w, http.StatusNotFound, "not_found", "no handler for "+r.URL.Path)
			return
		}
		obsHandler.ServeHTTP(w, r)
	})
	mux.Handle("/metrics", obs.PromHandler(reg))
	mux.Handle("/v1/", mapdb.HandlerWithStatus(store, reg, spans))
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func main() {
	var (
		addr         = flag.String("listen", "127.0.0.1:0", "listen address for agent callbacks")
		profile      = flag.String("profile", "tiny", "world the demo agent lives in")
		seed         = flag.Int64("seed", 1, "generation seed")
		demo         = flag.Bool("demo", true, "spawn an in-process demo agent")
		metricsAddr  = flag.String("metrics-addr", "", "serve the obs registry over HTTP on this address (e.g. 127.0.0.1:9100): JSON on /, Prometheus text on /metrics")
		metricsJSON  = flag.Bool("metrics-json", false, "print the final metrics snapshot as JSON on exit")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/ on -metrics-addr")
		faultSpec    = flag.String("faults", "", "inject deterministic faults into the agent link, e.g. seed=11,drop=0.12,heal=40 (see internal/faults)")
		serve        = flag.Bool("serve", false, "after inference, keep serving the map on -metrics-addr until interrupted")
		rounds       = flag.Int("rounds", 0, "run the continuous-monitoring loop for this many generations instead of the single-agent demo")
		incremental  = flag.Bool("incremental", false, "with -rounds, carry stop sets, trace caches, and prior attributions across rounds (see README: Continuous monitoring)")
		refreshEach  = flag.Int("refresh-every", 0, "with -incremental, force a full re-walk of each cached target every N rounds (0 = default cadence, -1 = never)")
		verify       = flag.Bool("verify", false, "with -incremental, cross-check every round against a from-scratch run and abort on any divergence")
		fleetWorkers = flag.Int("fleet-workers", 1, "with -rounds, measure each round's vantage points on this many coordinator workers (the served map is identical for any count)")
		fleetQuorum  = flag.Int("fleet-quorum", 0, "with -rounds, publish a partial generation once this many VPs complete, marking the rest degraded (0 = full generations only; see /v1/fleet)")
		spanOut      = flag.String("span-out", "", "write the run's span timeline as a Chrome trace_event file on exit (open in Perfetto / chrome://tracing)")
		dataDir      = flag.String("data-dir", "", "persist every published generation as a segment file in this directory and recover the retained history from it on boot (crash-safe; see README: Serving the map)")
		follow       = flag.String("follow", "", "run as a read-only follower of the bdrmapd at this base URL (e.g. http://127.0.0.1:9100): tail its generation stream and serve /v1/ locally on -metrics-addr")
	)
	flag.Parse()

	prof, ok := topo.ProfileByName(*profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if !*demo && *rounds == 0 && *follow == "" {
		log.Fatal("only -demo mode is supported offline: the agent needs a world to probe")
	}

	s := eval.Build(prof, *seed)
	// The store exists before inference so the query API can come up
	// immediately: /v1/* answers 503 no_generation until the first publish.
	// With -data-dir it is durable: generations recovered on boot, every
	// publish fsynced to a segment file before it becomes visible.
	var store *mapdb.Store
	if *dataDir != "" {
		var err error
		store, err = mapdb.OpenStore(*dataDir, 0, s.Obs)
		if err != nil {
			log.Fatal(err)
		}
		if cur := store.Current(); cur != nil {
			log.Printf("recovered generations %v from %s (serving %d)", store.Generations(), *dataDir, cur.Gen())
		}
	} else {
		store = mapdb.NewStore(0, s.Obs)
	}
	var srv *http.Server
	var sampler *obs.RuntimeSampler
	if *metricsAddr != "" {
		srv = &http.Server{Addr: *metricsAddr, Handler: newMux(s.Obs, store, s.Spans, *pprofOn)}
		// Self-observation: heap, GC, and goroutine gauges refresh in the
		// background so /metrics and /v1/status report live process health.
		sampler = obs.StartRuntimeSampler(s.Obs, time.Second)
		go func() {
			log.Printf("serving on http://%s/ (Prometheus on /metrics, map queries and status under /v1/)", *metricsAddr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics: %v", err)
			}
		}()
	}
	// finish handles the shared tail: the optional metrics dump, the span
	// timeline export, the optional serve-until-interrupted phase, and
	// metrics-server drain.
	finish := func() {
		if *spanOut != "" {
			f, err := os.Create(*spanOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := s.Spans.WriteChrome(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			log.Printf("span timeline written to %s (load in https://ui.perfetto.dev/)", *spanOut)
		}
		if *metricsJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(s.Obs.Snapshot()); err != nil {
				log.Fatal(err)
			}
		}
		sampler.Stop()
		if srv != nil {
			if *serve {
				// Stay up as a map server: the published generations keep
				// answering /v1/ queries until the operator interrupts.
				sig := make(chan os.Signal, 1)
				signal.Notify(sig, os.Interrupt)
				log.Printf("map generation %d live; serving until interrupted", store.Current().Gen())
				<-sig
			}
			// Drain in-flight scrapes before exiting instead of cutting them off.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				log.Printf("metrics shutdown: %v", err)
			}
		}
	}

	if *follow != "" {
		// Follower mode: no probing at all. Tail the leader's generation
		// stream (full segment on first contact or history gap, diffs
		// otherwise) and serve every /v1/ read locally until interrupted.
		if srv == nil {
			log.Fatal("-follow requires -metrics-addr: a follower's only job is serving /v1/ locally")
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		f := &mapdb.Follower{Leader: *follow, Store: store, Reg: s.Obs}
		log.Printf("following %s; replicated generations served under /v1/", *follow)
		if err := f.Run(ctx); err != nil && err != context.Canceled {
			log.Printf("follower: %v", err)
		}
		if cur := store.Current(); cur != nil {
			log.Printf("follower stopped at generation %d", cur.Gen())
		}
		finish()
		return
	}

	if *rounds > 0 {
		// Continuous-monitoring mode: measure -rounds generations of a
		// churning world into the store, optionally reusing the previous
		// round's measurement memory, then serve/report like the demo.
		events, err := mapdb.RunRounds(mapdb.RoundsConfig{
			Profile: prof, Seed: *seed, Rounds: *rounds,
			FleetWorkers: *fleetWorkers, FleetQuorum: *fleetQuorum,
			Incremental: *incremental, RefreshEvery: *refreshEach,
			Verify: *verify, Obs: s.Obs,
			Spans: s.Spans, SpanParent: s.SpanRoot.ID(),
		}, store)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range events {
			fmt.Printf("generation %d: %s (trace fp %016x)\n", e.Gen, e.Action, e.TraceFP)
		}
		if *incremental {
			c := func(name string) int64 { return s.Obs.Counter(name).Load() }
			fmt.Printf("trace cache: %d hit / %d miss / %d refresh; traces %d live + %d replayed; alias ops replayed %d; attributions spliced %d\n",
				c("rounds.cache.hit"), c("rounds.cache.miss"), c("rounds.cache.refresh"),
				c("driver.traces_live"), c("driver.traces_cached"),
				c("rounds.alias.replayed"), c("core.inc.spliced"))
		}
		finish()
		return
	}

	ctrl, err := scamper.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.SetObs(s.Obs)
	log.Printf("bdrmapd listening on %s", ctrl.Addr())

	spec, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	inj := faults.New(spec)

	agentEngine := probe.New(s.Net, bgp.NewTable(s.Net))
	agentEngine.SetObs(s.Obs)
	agentEngine.SetFaults(inj)
	// The agent keeps a small span log of its own sessions; the controller
	// pulls and grafts it under the VP span after the run (protocol v2
	// capability — older agents simply don't advertise it).
	agent := &scamper.Agent{E: agentEngine, VP: s.Net.VPs[0], Spans: obs.NewSpanLog(256)}
	go func() {
		// DialRetry redials with backoff so a cut session resumes — the
		// paper's agents reconnect after home-gateway reboots and churn.
		if err := agent.DialRetry(ctrl.Addr(), scamper.DialOptions{
			Dial: inj.DialFunc,
		}); err != nil {
			log.Printf("agent: %v", err)
		}
	}()

	rp, err := ctrl.Accept()
	if err != nil {
		log.Fatal(err)
	}
	defer rp.Close()
	log.Printf("agent %q connected", rp.Name())

	vsp := s.Spans.Begin(s.SpanRoot.ID(), "vp", s.Net.VPs[0].Name)
	vsp.SetAttr("mode", "remote")
	d := &scamper.Driver{
		View: s.View, Prober: rp, HostASNs: s.HostASNs, Obs: s.Obs, Trace: s.Trace,
		Spans: s.Spans, SpanParent: vsp.ID(),
	}
	ds := d.Run()
	if err := rp.Err(); err != nil {
		// A permanently lost session degrades to a partial map rather
		// than aborting: whatever was measured is still inferred.
		log.Printf("transport degraded: %v (%d target(s) lost)", err, ds.Stats.TargetsLost)
	}
	if recs, err := rp.PullSpans(); err == nil {
		s.Spans.MergeRecords(recs, vsp.ID())
	}
	res := core.Infer(core.Input{
		Data: ds, View: s.View, Rel: asrel.Infer(s.View), RIR: s.RIR, IXP: s.IXP,
		HostASN: s.Net.HostASN, Siblings: s.Sibs, Obs: s.Obs, Trace: s.Trace,
		Spans: s.Spans, SpanParent: vsp.ID(),
	})
	vsp.End()
	store.Publish(mapdb.Compile(s.Net.HostASN, []*core.Result{res}))

	out, in := rp.BytesTransferred()
	fmt.Printf("agent %s: %d commands, %dB peak buffer (device state)\n",
		rp.Name(), agent.Commands(), agent.StateBytes())
	fmt.Printf("protocol traffic: %dB out, %dB in\n", out, in)
	fmt.Printf("inferred %d interdomain links across %d neighbors\n",
		len(res.Links), len(res.Neighbors))
	for asn, links := range res.Neighbors {
		fmt.Printf("  %v: %d link(s)\n", asn, len(links))
	}
	finish()
}
