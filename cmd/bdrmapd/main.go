// Command bdrmapd is the central system of §5.8: it listens for callback
// connections from thin probing agents running on resource-limited
// devices, drives the full measurement schedule over each connection, runs
// border inference centrally, and prints the result.
//
// For a self-contained demonstration, -demo spawns an in-process agent
// connected over loopback TCP, mirroring the BISmark deployment where the
// device only executes probe commands while the central system keeps all
// state (the paper measured 3.5MB on-device vs ~150MB centrally).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"bdrmap/internal/asrel"
	"bdrmap/internal/bgp"
	"bdrmap/internal/core"
	"bdrmap/internal/eval"
	"bdrmap/internal/faults"
	"bdrmap/internal/obs"
	"bdrmap/internal/probe"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

func main() {
	var (
		addr        = flag.String("listen", "127.0.0.1:0", "listen address for agent callbacks")
		profile     = flag.String("profile", "tiny", "world the demo agent lives in")
		seed        = flag.Int64("seed", 1, "generation seed")
		demo        = flag.Bool("demo", true, "spawn an in-process demo agent")
		metricsAddr = flag.String("metrics-addr", "", "serve the obs registry over HTTP on this address (e.g. 127.0.0.1:9100): JSON on /, Prometheus text on /metrics")
		metricsJSON = flag.Bool("metrics-json", false, "print the final metrics snapshot as JSON on exit")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/ on -metrics-addr")
		faultSpec   = flag.String("faults", "", "inject deterministic faults into the agent link, e.g. seed=11,drop=0.12,heal=40 (see internal/faults)")
	)
	flag.Parse()

	var prof topo.Profile
	switch *profile {
	case "tiny":
		prof = topo.TinyProfile()
	case "re", "r&e":
		prof = topo.REProfile()
	case "small-access":
		prof = topo.SmallAccessProfile()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if !*demo {
		log.Fatal("only -demo mode is supported offline: the agent needs a world to probe")
	}

	s := eval.Build(prof, *seed)
	var srv *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(s.Obs))
		mux.Handle("/metrics", obs.PromHandler(s.Obs))
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		srv = &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			log.Printf("metrics endpoint on http://%s/ (Prometheus on /metrics)", *metricsAddr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics: %v", err)
			}
		}()
	}
	ctrl, err := scamper.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.SetObs(s.Obs)
	log.Printf("bdrmapd listening on %s", ctrl.Addr())

	spec, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	inj := faults.New(spec)

	agentEngine := probe.New(s.Net, bgp.NewTable(s.Net))
	agentEngine.SetObs(s.Obs)
	agentEngine.SetFaults(inj)
	agent := &scamper.Agent{E: agentEngine, VP: s.Net.VPs[0]}
	go func() {
		// DialRetry redials with backoff so a cut session resumes — the
		// paper's agents reconnect after home-gateway reboots and churn.
		if err := agent.DialRetry(ctrl.Addr(), scamper.DialOptions{
			Dial: inj.DialFunc,
		}); err != nil {
			log.Printf("agent: %v", err)
		}
	}()

	rp, err := ctrl.Accept()
	if err != nil {
		log.Fatal(err)
	}
	defer rp.Close()
	log.Printf("agent %q connected", rp.Name())

	d := &scamper.Driver{View: s.View, Prober: rp, HostASNs: s.HostASNs, Obs: s.Obs, Trace: s.Trace}
	ds := d.Run()
	if err := rp.Err(); err != nil {
		// A permanently lost session degrades to a partial map rather
		// than aborting: whatever was measured is still inferred.
		log.Printf("transport degraded: %v (%d target(s) lost)", err, ds.Stats.TargetsLost)
	}
	res := core.Infer(core.Input{
		Data: ds, View: s.View, Rel: asrel.Infer(s.View), RIR: s.RIR, IXP: s.IXP,
		HostASN: s.Net.HostASN, Siblings: s.Sibs, Obs: s.Obs, Trace: s.Trace,
	})

	out, in := rp.BytesTransferred()
	fmt.Printf("agent %s: %d commands, %dB peak buffer (device state)\n",
		rp.Name(), agent.Commands(), agent.StateBytes())
	fmt.Printf("protocol traffic: %dB out, %dB in\n", out, in)
	fmt.Printf("inferred %d interdomain links across %d neighbors\n",
		len(res.Links), len(res.Neighbors))
	for asn, links := range res.Neighbors {
		fmt.Printf("  %v: %d link(s)\n", asn, len(links))
	}
	if *metricsJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.Obs.Snapshot()); err != nil {
			log.Fatal(err)
		}
	}
	if srv != nil {
		// Drain in-flight scrapes before exiting instead of cutting them off.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("metrics shutdown: %v", err)
		}
	}
}
