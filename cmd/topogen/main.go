// Command topogen generates a synthetic internetwork and prints its
// inventory: AS counts by tier, router/link statistics, the host network's
// neighbor breakdown, the IXPs, and (with -delegations) the RIR delegation
// file the world publishes.
package main

import (
	"flag"
	"fmt"
	"os"

	"bdrmap/internal/rir"
	"bdrmap/internal/topo"
)

func main() {
	var (
		profile     = flag.String("profile", "tiny", "tiny|re|small-access|large-access|tier1|enterprise|remote-peering|hypergiant|route-server|regional-vp")
		seed        = flag.Int64("seed", 1, "generation seed")
		delegations = flag.Bool("delegations", false, "dump the RIR delegation file")
		routers     = flag.Bool("routers", false, "dump every router with interfaces")
		save        = flag.String("save", "", "serialize the generated world to this file")
	)
	flag.Parse()

	prof, ok := topo.ProfileByName(*profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	n := topo.Generate(prof, *seed)
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := n.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("world saved to %s\n", *save)
	}
	s := n.Stats()
	fmt.Printf("profile=%s seed=%d\n", prof.Name, *seed)
	fmt.Printf("ASes=%d routers=%d links=%d interdomain=%d prefixes=%d ixps=%d vps=%d\n",
		s.ASes, s.Routers, s.Links, s.InterdomainLinks, s.Prefixes, s.IXPs, s.VPs)

	tiers := map[topo.Tier]int{}
	for _, asn := range n.ASNs() {
		tiers[n.ASes[asn].Tier]++
	}
	fmt.Print("tiers:")
	for _, t := range []topo.Tier{topo.TierTier1, topo.TierTransit, topo.TierAccess,
		topo.TierCDN, topo.TierRE, topo.TierIXP, topo.TierStub} {
		if tiers[t] > 0 {
			fmt.Printf(" %s=%d", t, tiers[t])
		}
	}
	fmt.Println()

	host := n.ASes[n.HostASN]
	var cust, peer, prov, sib int
	for _, nb := range host.Neighbors() {
		switch nb.Rel {
		case topo.RelCustomer:
			cust++
		case topo.RelPeer:
			peer++
		case topo.RelProvider:
			prov++
		case topo.RelSibling:
			sib++
		}
	}
	fmt.Printf("host %v: customers=%d peers=%d providers=%d siblings=%d hidden=%d\n",
		n.HostASN, cust, peer, prov, sib, len(n.HiddenNeighbors))
	for _, x := range n.IXPs {
		fmt.Printf("ixp %s: operator=%v lan=%v members=%d announces-lan=%v\n",
			x.Name, x.OperatorASN, x.LAN, len(x.Members), x.AnnouncesLAN)
	}
	for _, vp := range n.VPs {
		fmt.Printf("vp %s at router %d addr %v\n", vp.Name, vp.Router, vp.Addr)
	}

	if *routers {
		for _, r := range n.Routers {
			fmt.Printf("router %v lon=%.1f addrs=%v\n", r, r.Longitude, r.Addrs())
		}
	}
	if *delegations {
		db := rir.FromNetwork(n)
		if _, err := db.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
