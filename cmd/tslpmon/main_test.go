package main

import (
	"reflect"
	"sort"
	"testing"

	"bdrmap"
	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/tslp"
)

func sortTargets(ts []tslp.Target) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.FarAS != b.FarAS {
			return a.FarAS < b.FarAS
		}
		if a.Near != b.Near {
			return a.Near < b.Near
		}
		return a.Far < b.Far
	})
}

// TestDeriveTargetsMatchesReportPath pins the mapdb migration: the targets
// derived from the compiled snapshot must be exactly the ones the
// pre-mapdb code derived by walking Report.Links directly.
func TestDeriveTargetsMatchesReportPath(t *testing.T) {
	for _, prof := range []struct {
		name string
		p    bdrmap.Profile
	}{
		{"tiny", bdrmap.Tiny()},
		{"small-access", bdrmap.SmallAccess()},
	} {
		t.Run(prof.name, func(t *testing.T) {
			world := bdrmap.NewWorld(prof.p, 1)
			report := world.MapBorders(0)
			s := world.Scenario()
			prober := engineProber{e: s.Engine, vp: s.Net.VPs[0]}
			echo := func(a netx.Addr) bool {
				return prober.Probe(a, probe.MethodICMPEcho).OK
			}

			// The pre-mapdb selection loop, verbatim.
			var old []tslp.Target
			for _, l := range report.Links {
				if l.FarAddr.IsZero() {
					continue
				}
				if echo(l.NearAddr) && echo(l.FarAddr) {
					old = append(old, tslp.Target{Near: l.NearAddr, Far: l.FarAddr, FarAS: l.FarAS})
				}
			}

			snap := world.BuildMapDB()
			got := deriveTargets(snap, echo)

			if snap.NumLinks() != len(report.Links) {
				t.Errorf("snapshot serves %d links, report has %d", snap.NumLinks(), len(report.Links))
			}
			sortTargets(old)
			sortTargets(got)
			if !reflect.DeepEqual(old, got) {
				t.Fatalf("target selection changed:\nold: %v\nnew: %v", old, got)
			}
			if len(got) == 0 {
				t.Fatal("no monitorable targets derived")
			}
		})
	}
}
