// Command tslpmon is the congestion-monitoring pipeline of §2: it maps the
// hosting network's borders with bdrmap, derives (near, far) probe-target
// pairs for every monitorable interdomain link, runs time-series latency
// probing for a simulated day, and reports the congested interconnects.
//
// With -congest N, evening congestion is injected on N randomly chosen
// interdomain links before monitoring begins, so detection has something
// to find; the report is compared against that ground truth.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"bdrmap"
	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
	"bdrmap/internal/tslp"
)

type engineProber struct {
	e  *probe.Engine
	vp *topo.VP
}

func (p engineProber) Probe(a netx.Addr, m probe.Method) probe.Response {
	return p.e.Probe(p.vp, a, m)
}
func (p engineProber) Advance(d time.Duration) { p.e.Advance(d) }

func main() {
	var (
		profile  = flag.String("profile", "small-access", "tiny|re|small-access|enterprise")
		seed     = flag.Int64("seed", 1, "world seed")
		congest  = flag.Int("congest", 1, "interdomain links to congest in the evening")
		interval = flag.Duration("interval", 5*time.Minute, "probing cadence")
		duration = flag.Duration("duration", 24*time.Hour, "monitoring duration")
	)
	flag.Parse()

	var prof bdrmap.Profile
	switch *profile {
	case "tiny":
		prof = bdrmap.Tiny()
	case "re", "r&e":
		prof = bdrmap.RE()
	case "small-access":
		prof = bdrmap.SmallAccess()
	case "enterprise":
		prof = topo.EnterpriseProfile()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	world := bdrmap.NewWorld(prof, *seed)
	fmt.Printf("mapping borders of %v...\n", world.HostASN())
	report := world.MapBorders(0)
	s := world.Scenario()
	prober := engineProber{e: s.Engine, vp: s.Net.VPs[0]}

	var targets []tslp.Target
	for _, l := range report.Links {
		if l.FarAddr.IsZero() {
			continue
		}
		if prober.Probe(l.NearAddr, probe.MethodICMPEcho).OK &&
			prober.Probe(l.FarAddr, probe.MethodICMPEcho).OK {
			targets = append(targets, tslp.Target{Near: l.NearAddr, Far: l.FarAddr, FarAS: l.FarAS})
		}
	}
	fmt.Printf("%d links mapped, %d monitorable\n", len(report.Links), len(targets))
	if len(targets) == 0 {
		fmt.Println("nothing to monitor")
		return
	}

	// Inject ground-truth congestion. Truth is tracked per physical link:
	// congesting a shared IXP LAN legitimately affects every member's
	// probes across that fabric.
	rng := rand.New(rand.NewSource(*seed))
	truth := map[*topo.Link]bool{}
	linkOf := func(far netx.Addr) *topo.Link {
		if ifc := s.Net.IfaceByAddr(far); ifc != nil {
			return ifc.Link
		}
		return nil
	}
	for i := 0; i < *congest && i < len(targets); i++ {
		l := linkOf(targets[rng.Intn(len(targets))].Far)
		if l == nil || truth[l] {
			continue
		}
		s.Engine.InjectCongestion(probe.CongestionEpisode{
			Link:  l,
			Start: 19 * time.Hour,
			End:   23 * time.Hour,
			Queue: time.Duration(20+rng.Intn(40)) * time.Millisecond,
		})
		truth[l] = true
	}
	fmt.Printf("injected evening congestion on %d link(s)\n\n", len(truth))

	series := tslp.Run(prober, targets, tslp.Config{Interval: *interval, Duration: *duration})
	detected := map[*topo.Link]bool{}
	for _, r := range tslp.DetectAll(series, 30*time.Minute, 3*time.Millisecond) {
		if r.Congested() {
			detected[linkOf(r.Target.Far)] = true
			fmt.Println(r)
		}
	}

	tp, fn, fp := 0, 0, 0
	for l := range truth {
		if detected[l] {
			tp++
		} else {
			fn++
		}
	}
	for l := range detected {
		if !truth[l] {
			fp++
		}
	}
	fmt.Printf("\ndetection vs ground truth: %d link(s) found, %d missed, %d false alarms\n", tp, fn, fp)
}
