// Command tslpmon is the congestion-monitoring pipeline of §2: it maps the
// hosting network's borders with bdrmap, derives (near, far) probe-target
// pairs for every monitorable interdomain link, runs time-series latency
// probing for a simulated day, and reports the congested interconnects.
//
// With -congest N, evening congestion is injected on N randomly chosen
// interdomain links before monitoring begins, so detection has something
// to find; the report is compared against that ground truth.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"sort"
	"time"

	"bdrmap"
	"bdrmap/internal/eval"
	"bdrmap/internal/mapdb"
	"bdrmap/internal/netx"
	"bdrmap/internal/probe"
	"bdrmap/internal/topo"
	"bdrmap/internal/tslp"
)

type engineProber struct {
	e  *probe.Engine
	vp *topo.VP
}

func (p engineProber) Probe(a netx.Addr, m probe.Method) probe.Response {
	return p.e.Probe(p.vp, a, m)
}
func (p engineProber) Advance(d time.Duration) { p.e.Advance(d) }

// deriveTargets resolves the monitorable probe pairs from a compiled border
// map: every interdomain link whose far side is known (not a silent hop)
// and whose both sides answer ICMP echo becomes a (near, far) target.
func deriveTargets(snap *mapdb.Snapshot, echo func(netx.Addr) bool) []tslp.Target {
	var targets []tslp.Target
	for _, l := range snap.Links() {
		if l.Far.IsZero() {
			continue
		}
		if echo(l.Near) && echo(l.Far) {
			targets = append(targets, tslp.Target{Near: l.Near, Far: l.Far, FarAS: l.FarAS})
		}
	}
	return targets
}

// runWatch replaces the poll-and-rebuild loop with the push path: it tails
// a live bdrmapd's /v1/watch stream, counts border-flap events per link
// identity as generations publish, and prints a flap leaderboard on exit.
// Diff frames marked quorum-partial (a vantage point missing, not a border
// moving) are reported but never counted — that churn is a measurement
// artifact, and counting it is exactly the false-alarm class the degraded
// marks exist to prevent.
func runWatch(base string, maxFrames int) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	type ident struct {
		near, far netx.Addr
		farAS     topo.ASN
	}
	name := func(id ident) string {
		return fmt.Sprintf("%s -> %s (AS%d)", id.near, id.far, id.farAS)
	}
	flaps := map[ident]int{}
	count := func(ls []mapdb.Link) {
		for _, l := range ls {
			flaps[ident{l.Near, l.Far, l.FarAS}]++
		}
	}
	frames, discounted, from := 0, 0, 0
	errDone := errors.New("watch budget reached")
	for ctx.Err() == nil {
		wc := &mapdb.WatchClient{Base: base, From: from}
		err := wc.Run(ctx, func(f mapdb.WatchFrame) error {
			switch f.Type {
			case "hello":
				fmt.Printf("watching %s (host AS%d, generation %d)\n", base, f.HostAS, f.Gen)
			case "diff":
				d := f.Diff
				if d == nil {
					return nil
				}
				from = d.To
				frames++
				if d.Degraded() {
					discounted++
					fmt.Printf("generation %d -> %d: +%d/-%d links [quorum-partial, degraded VPs %v — not counted]\n",
						d.From, d.To, len(d.Added), len(d.Removed), d.DegradedVPs)
				} else {
					count(d.Added)
					count(d.Removed)
					fmt.Printf("generation %d -> %d: +%d/-%d links, %d relabeled, %d owner change(s)\n",
						d.From, d.To, len(d.Added), len(d.Removed), len(d.Relabeled), len(d.OwnerChanges))
				}
				if maxFrames > 0 && frames >= maxFrames {
					return errDone
				}
			}
			return nil
		})
		if errors.Is(err, errDone) || ctx.Err() != nil {
			break
		}
		if errors.Is(err, mapdb.ErrGenUnknown) {
			// The leader's history moved past our resume point: rejoin the
			// live stream and keep the flap counts we already have.
			from = 0
			continue
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "watch: %v (redialing)\n", err)
		}
		select {
		case <-ctx.Done():
		case <-time.After(time.Second):
		}
	}
	type row struct {
		id ident
		n  int
	}
	rows := make([]row, 0, len(flaps))
	for id, n := range flaps {
		rows = append(rows, row{id, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return name(rows[i].id) < name(rows[j].id)
	})
	fmt.Printf("\n%d diff frame(s) observed (%d quorum-partial, discounted); %d flapping link(s)\n",
		frames, discounted, len(rows))
	for i, r := range rows {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(rows)-10)
			break
		}
		fmt.Printf("  %s: %d flap event(s)\n", name(r.id), r.n)
	}
}

func main() {
	var (
		profile  = flag.String("profile", "small-access", "tiny|re|small-access|enterprise")
		seed     = flag.Int64("seed", 1, "world seed")
		congest  = flag.Int("congest", 1, "interdomain links to congest in the evening")
		interval = flag.Duration("interval", 5*time.Minute, "probing cadence")
		duration = flag.Duration("duration", 24*time.Hour, "monitoring duration")
		rounds   = flag.Int("rounds", 0, "map borders through this many continuous-monitoring rounds of churn and monitor the final generation")
		incr     = flag.Bool("incremental", false, "with -rounds, carry stop sets, trace caches, and prior attributions across rounds")
		watch    = flag.String("watch", "", "stream /v1/watch from a running bdrmapd at this base URL and report border churn live instead of building a world (quorum-partial frames are reported but never counted as flaps)")
		watchMax = flag.Int("watch-frames", 0, "with -watch, exit after this many diff frames (0 = run until interrupted)")
	)
	flag.Parse()

	if *watch != "" {
		runWatch(*watch, *watchMax)
		return
	}

	var prof bdrmap.Profile
	switch *profile {
	case "tiny":
		prof = bdrmap.Tiny()
	case "re", "r&e":
		prof = bdrmap.RE()
	case "small-access":
		prof = bdrmap.SmallAccess()
	case "enterprise":
		prof = topo.EnterpriseProfile()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	var snap *mapdb.Snapshot
	var s *eval.Scenario
	if *rounds > 0 {
		// Map through the continuous-monitoring loop: the store's final
		// generation — after -rounds rounds of churn, incrementally
		// measured if asked — is what gets monitored.
		st := mapdb.NewStore(0, nil)
		events, sc, err := mapdb.RunRoundsFull(mapdb.RoundsConfig{
			Profile: prof, Seed: *seed, Rounds: *rounds, Incremental: *incr,
		}, st)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("mapping borders of %v across %d rounds...\n", sc.Net.HostASN, *rounds)
		for _, e := range events {
			fmt.Printf("  generation %d: %s\n", e.Gen, e.Action)
		}
		snap = st.Current()
		s = sc
	} else {
		world := bdrmap.NewWorld(prof, *seed)
		fmt.Printf("mapping borders of %v...\n", world.HostASN())
		snap = world.BuildMapDB()
		s = world.Scenario()
	}
	prober := engineProber{e: s.Engine, vp: s.Net.VPs[0]}

	targets := deriveTargets(snap, func(a netx.Addr) bool {
		return prober.Probe(a, probe.MethodICMPEcho).OK
	})
	fmt.Printf("%d links mapped, %d monitorable\n", snap.NumLinks(), len(targets))
	if len(targets) == 0 {
		fmt.Println("nothing to monitor")
		return
	}

	// Inject ground-truth congestion. Truth is tracked per physical link:
	// congesting a shared IXP LAN legitimately affects every member's
	// probes across that fabric.
	rng := rand.New(rand.NewSource(*seed))
	truth := map[*topo.Link]bool{}
	linkOf := func(far netx.Addr) *topo.Link {
		if ifc := s.Net.IfaceByAddr(far); ifc != nil {
			return ifc.Link
		}
		return nil
	}
	for i := 0; i < *congest && i < len(targets); i++ {
		l := linkOf(targets[rng.Intn(len(targets))].Far)
		if l == nil || truth[l] {
			continue
		}
		s.Engine.InjectCongestion(probe.CongestionEpisode{
			Link:  l,
			Start: 19 * time.Hour,
			End:   23 * time.Hour,
			Queue: time.Duration(20+rng.Intn(40)) * time.Millisecond,
		})
		truth[l] = true
	}
	fmt.Printf("injected evening congestion on %d link(s)\n\n", len(truth))

	series := tslp.Run(prober, targets, tslp.Config{Interval: *interval, Duration: *duration})
	detected := map[*topo.Link]bool{}
	for _, r := range tslp.DetectAll(series, 30*time.Minute, 3*time.Millisecond) {
		if r.Congested() {
			detected[linkOf(r.Target.Far)] = true
			fmt.Println(r)
		}
	}

	tp, fn, fp := 0, 0, 0
	for l := range truth {
		if detected[l] {
			tp++
		} else {
			fn++
		}
	}
	for l := range detected {
		if !truth[l] {
			fp++
		}
	}
	fmt.Printf("\ndetection vs ground truth: %d link(s) found, %d missed, %d false alarms\n", tp, fn, fp)
}
