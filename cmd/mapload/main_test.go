package main

import (
	"testing"
	"time"
)

// TestMapLoadSelfContained runs a short self-contained load burst and
// checks the harness end to end: real requests flowed, the rival
// publisher churned generations underneath them, the quantiles are
// populated and ordered, and the artifact rows carry the benchjson shape.
func TestMapLoadSelfContained(t *testing.T) {
	rep, err := run(config{
		profile:      "tiny",
		seed:         1,
		workers:      4,
		duration:     500 * time.Millisecond,
		publishEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Errorf("%d request errors under load", rep.Errors)
	}
	if rep.Published == 0 {
		t.Error("rival publisher never published a generation")
	}
	if rep.P99 <= 0 {
		t.Errorf("p99 = %v, want > 0", rep.P99)
	}
	if !(rep.P50 <= rep.P99 && rep.P99 <= rep.P999) {
		t.Errorf("quantiles out of order: p50=%v p99=%v p999=%v", rep.P50, rep.P99, rep.P999)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d artifact rows, want 3", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.Iterations != rep.Requests || r.Procs == 0 {
			t.Errorf("artifact row %+v malformed", r)
		}
	}
}

// TestMapLoadUnknownProfile exercises the config error path.
func TestMapLoadUnknownProfile(t *testing.T) {
	if _, err := run(config{profile: "no-such-world", workers: 1, duration: time.Millisecond}); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}
