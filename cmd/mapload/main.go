// Command mapload is a load harness for the serving tier: it drives the
// /v1/ query API with a pool of concurrent workers while a rival publisher
// churns map generations underneath them, then reports request-latency
// quantiles (p50/p99/p999) from an obs histogram as a benchjson-compatible
// JSON artifact CI can diff across PRs.
//
// The point is not raw throughput but tail behavior under generation
// churn: Store.Publish swaps an atomic pointer, so a reader mid-request
// keeps its snapshot and the p99 should stay flat no matter how fast the
// publisher spins. A lock-based store would show up here immediately.
//
// By default mapload is self-contained: it measures a synthetic world
// once, publishes it into an in-process Store, serves the real HTTP stack
// (mapdb.HandlerWithStatus over a TCP loopback listener), and hammers
// that. With -addr it instead targets an already-running bdrmapd, where
// only the world-independent endpoints (/v1/gen, /v1/status) are driven.
//
// Usage:
//
//	mapload -duration 5s -workers 8 -publish-every 10ms -out BENCH_PR8.json
//	mapload -addr 127.0.0.1:9100 -duration 10s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bdrmap/internal/eval"
	"bdrmap/internal/mapdb"
	"bdrmap/internal/obs"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// loadEdgesUS buckets request latency in microseconds, geometric ×2 from
// 25µs: loopback point lookups land in the low buckets, so the p999
// interpolation keeps sub-millisecond resolution where it matters.
var loadEdgesUS = []int64{25, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200, 102400, 204800}

// config is one harness run, fully specified (main parses flags into it;
// tests construct it directly).
type config struct {
	addr         string // target host:port; "" = self-contained mode
	profile      string
	seed         int64
	workers      int
	duration     time.Duration
	publishEvery time.Duration
}

// benchResult matches cmd/benchjson's artifact schema so mapload's output
// drops into the same CI diffing pipeline as `go test -bench` results.
type benchResult struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// report is what one run measured.
type report struct {
	Requests  int64
	Errors    int64
	Published int64   // generations the rival publisher pushed mid-run
	P50       float64 // microseconds
	P99       float64
	P999      float64
	Results   []benchResult
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "drive an already-running bdrmapd at this host:port instead of a self-contained server")
	flag.StringVar(&cfg.profile, "profile", "tiny", "world the self-contained server measures and serves")
	flag.Int64Var(&cfg.seed, "seed", 1, "generation seed for the self-contained world")
	flag.IntVar(&cfg.workers, "workers", 8, "concurrent query workers")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "how long to sustain the load")
	flag.DurationVar(&cfg.publishEvery, "publish-every", 10*time.Millisecond, "rival publisher's generation churn interval (self-contained mode)")
	out := flag.String("out", "", "write the benchjson artifact to this file (default: stdout)")
	flag.Parse()

	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapload:", err)
		os.Exit(1)
	}

	// Human transcript on stderr, machine artifact on stdout (or -out) —
	// so `mapload > bench.json` works without contaminating the JSON.
	fmt.Fprintf(os.Stderr, "mapload: %d requests, %d errors, %d generations published mid-run\n",
		rep.Requests, rep.Errors, rep.Published)
	fmt.Fprintf(os.Stderr, "latency: p50=%.0fµs p99=%.0fµs p999=%.0fµs\n", rep.P50, rep.P99, rep.P999)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep.Results); err != nil {
		fmt.Fprintln(os.Stderr, "mapload:", err)
		os.Exit(1)
	}
}

// run executes one load run and returns the measured report.
func run(cfg config) (*report, error) {
	base := "http://" + cfg.addr
	paths := []string{"/v1/gen", "/v1/status"}
	var published atomic.Int64
	stop := func() {}

	if cfg.addr == "" {
		var err error
		base, paths, stop, err = selfServe(cfg, &published)
		if err != nil {
			return nil, err
		}
	}
	defer stop()

	// The load registry is separate from the serving side's: the harness
	// measures the client-observed round trip, server instrumentation
	// included but not shared.
	loadReg := obs.New()
	lat := loadReg.Histogram("mapload.latency_us", loadEdgesUS)
	reqs := loadReg.Counter("mapload.requests")
	errs := loadReg.Counter("mapload.errors")
	client := &http.Client{Timeout: 5 * time.Second}

	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker rotates through the path mix from a different
			// offset so the endpoints are hit concurrently, not in phase.
			for i := w; time.Now().Before(deadline); i++ {
				t0 := time.Now()
				resp, err := client.Get(base + paths[i%len(paths)])
				if err != nil {
					errs.Inc()
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat.Observe(time.Since(t0).Microseconds())
				reqs.Inc()
				if resp.StatusCode >= http.StatusInternalServerError {
					errs.Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	stop()

	snap := loadReg.Snapshot()
	rep := &report{
		Requests:  snap.Counter("mapload.requests"),
		Errors:    snap.Counter("mapload.errors"),
		Published: published.Load(),
		P50:       snap.Quantile("mapload.latency_us", 0.50),
		P99:       snap.Quantile("mapload.latency_us", 0.99),
		P999:      snap.Quantile("mapload.latency_us", 0.999),
	}
	count := snap.Histogram("mapload.latency_us").Count
	procs := runtime.GOMAXPROCS(0)
	for _, q := range []struct {
		name string
		us   float64
	}{
		{"MapLoadLatencyP50", rep.P50},
		{"MapLoadLatencyP99", rep.P99},
		{"MapLoadLatencyP999", rep.P999},
	} {
		rep.Results = append(rep.Results, benchResult{
			Name: q.name, Procs: procs, Iterations: count, NsPerOp: q.us * 1000,
		})
	}
	return rep, nil
}

// selfServe builds the self-contained target: measure a world once,
// publish it, serve the real HTTP stack on loopback, and start the rival
// publisher that republishes fresh generations of the same results every
// publishEvery. Returns the base URL, the query-path mix (seeded with real
// addresses from the served map), and a stop function (idempotent).
func selfServe(cfg config, published *atomic.Int64) (string, []string, func(), error) {
	prof, ok := topo.ProfileByName(cfg.profile)
	if !ok {
		return "", nil, nil, fmt.Errorf("unknown profile %q", cfg.profile)
	}
	s := eval.Build(prof, cfg.seed)
	s.RunAll(scamper.Config{})

	reg := obs.New()
	store := mapdb.NewStore(0, reg)
	snap := mapdb.Compile(s.Net.HostASN, s.Results)
	store.Publish(snap)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	srv := &http.Server{Handler: mapdb.HandlerWithStatus(store, reg, s.Spans)}
	go func() { _ = srv.Serve(ln) }()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(cfg.publishEvery)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				store.Publish(mapdb.Compile(s.Net.HostASN, s.Results))
				published.Add(1)
			}
		}
	}()

	var once sync.Once
	stop := func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			_ = srv.Close()
		})
	}
	return "http://" + ln.Addr().String(), queryPaths(snap), stop, nil
}

// queryPaths assembles the path mix from the served map itself, so owner
// and link lookups hit real entries (the hot path) rather than 404s.
func queryPaths(snap *mapdb.Snapshot) []string {
	paths := []string{"/v1/gen", "/v1/status"}
	for i, l := range snap.Links() {
		if i >= 8 {
			break
		}
		if !l.Far.IsZero() {
			paths = append(paths,
				"/v1/owner?ip="+l.Far.String(),
				"/v1/link?near="+l.Near.String()+"&far="+l.Far.String())
		}
		paths = append(paths, "/v1/neighbors?as="+l.FarAS.String())
	}
	return paths
}
