// Command mapload is a load harness for the serving tier: it drives the
// /v1/ query API with a pool of concurrent workers while a rival publisher
// churns map generations underneath them, then reports request-latency
// quantiles (p50/p99/p999) from an obs histogram as a benchjson-compatible
// JSON artifact CI can diff across PRs.
//
// The point is not raw throughput but tail behavior under generation
// churn: Store.Publish swaps an atomic pointer, so a reader mid-request
// keeps its snapshot and the p99 should stay flat no matter how fast the
// publisher spins. A lock-based store would show up here immediately.
//
// By default mapload is self-contained: it measures a synthetic world
// once, publishes it into an in-process Store, serves the real HTTP stack
// (mapdb.HandlerWithStatus over a TCP loopback listener), and hammers
// that. With -addr it instead targets an already-running bdrmapd, where
// only the world-independent endpoints (/v1/gen, /v1/status) are driven.
//
// With -follower the harness exercises the replication tier instead: the
// same leader runs with its rival publisher, an in-process Follower tails
// the leader's /v1/watch stream into a second Store, -watchers extra
// clients subscribe to the stream, and the query workers hammer the
// FOLLOWER's /v1/ surface. The measured tail is then a read served from
// Apply-reconstructed snapshots while diff frames land underneath it, and
// the artifact adds the leader's achieved publish interval and the watch
// fan-out frame rate.
//
// Usage:
//
//	mapload -duration 5s -workers 8 -publish-every 10ms -out BENCH_PR8.json
//	mapload -follower -watchers 4 -duration 5s -out BENCH_PR10.json
//	mapload -addr 127.0.0.1:9100 -duration 10s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bdrmap/internal/eval"
	"bdrmap/internal/mapdb"
	"bdrmap/internal/obs"
	"bdrmap/internal/scamper"
	"bdrmap/internal/topo"
)

// loadEdgesUS buckets request latency in microseconds, geometric ×2 from
// 25µs: loopback point lookups land in the low buckets, so the p999
// interpolation keeps sub-millisecond resolution where it matters.
var loadEdgesUS = []int64{25, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200, 102400, 204800}

// config is one harness run, fully specified (main parses flags into it;
// tests construct it directly).
type config struct {
	addr         string // target host:port; "" = self-contained mode
	profile      string
	seed         int64
	workers      int
	duration     time.Duration
	publishEvery time.Duration
	follower     bool // drive a replicating follower instead of the leader
	watchers     int  // extra /v1/watch subscribers (follower mode)
}

// benchResult matches cmd/benchjson's artifact schema so mapload's output
// drops into the same CI diffing pipeline as `go test -bench` results.
type benchResult struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// report is what one run measured.
type report struct {
	Requests  int64
	Errors    int64
	Published int64   // generations the rival publisher pushed mid-run
	Frames    int64   // diff frames delivered across all watch subscribers
	P50       float64 // microseconds
	P99       float64
	P999      float64
	Results   []benchResult
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "drive an already-running bdrmapd at this host:port instead of a self-contained server")
	flag.StringVar(&cfg.profile, "profile", "tiny", "world the self-contained server measures and serves")
	flag.Int64Var(&cfg.seed, "seed", 1, "generation seed for the self-contained world")
	flag.IntVar(&cfg.workers, "workers", 8, "concurrent query workers")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "how long to sustain the load")
	flag.DurationVar(&cfg.publishEvery, "publish-every", 10*time.Millisecond, "rival publisher's generation churn interval (self-contained mode)")
	flag.BoolVar(&cfg.follower, "follower", false, "replicate the leader into an in-process follower over /v1/watch and drive the follower's query surface instead")
	flag.IntVar(&cfg.watchers, "watchers", 4, "with -follower, extra /v1/watch subscribers counting streamed diff frames")
	out := flag.String("out", "", "write the benchjson artifact to this file (default: stdout)")
	flag.Parse()

	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mapload:", err)
		os.Exit(1)
	}

	// Human transcript on stderr, machine artifact on stdout (or -out) —
	// so `mapload > bench.json` works without contaminating the JSON.
	fmt.Fprintf(os.Stderr, "mapload: %d requests, %d errors, %d generations published mid-run\n",
		rep.Requests, rep.Errors, rep.Published)
	if cfg.follower {
		fmt.Fprintf(os.Stderr, "watch fan-out: %d diff frame(s) across %d subscriber(s)\n",
			rep.Frames, cfg.watchers)
	}
	fmt.Fprintf(os.Stderr, "latency: p50=%.0fµs p99=%.0fµs p999=%.0fµs\n", rep.P50, rep.P99, rep.P999)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mapload:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep.Results); err != nil {
		fmt.Fprintln(os.Stderr, "mapload:", err)
		os.Exit(1)
	}
}

// run executes one load run and returns the measured report.
func run(cfg config) (*report, error) {
	base := "http://" + cfg.addr
	paths := []string{"/v1/gen", "/v1/status"}
	var published, frames atomic.Int64
	stop := func() {}

	switch {
	case cfg.follower:
		var err error
		base, paths, stop, err = followerServe(cfg, &published, &frames)
		if err != nil {
			return nil, err
		}
	case cfg.addr == "":
		var err error
		base, paths, stop, err = selfServe(cfg, &published)
		if err != nil {
			return nil, err
		}
	}
	defer stop()

	// The load registry is separate from the serving side's: the harness
	// measures the client-observed round trip, server instrumentation
	// included but not shared.
	loadReg := obs.New()
	lat := loadReg.Histogram("mapload.latency_us", loadEdgesUS)
	reqs := loadReg.Counter("mapload.requests")
	errs := loadReg.Counter("mapload.errors")
	client := &http.Client{Timeout: 5 * time.Second}

	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker rotates through the path mix from a different
			// offset so the endpoints are hit concurrently, not in phase.
			for i := w; time.Now().Before(deadline); i++ {
				t0 := time.Now()
				resp, err := client.Get(base + paths[i%len(paths)])
				if err != nil {
					errs.Inc()
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat.Observe(time.Since(t0).Microseconds())
				reqs.Inc()
				if resp.StatusCode >= http.StatusInternalServerError {
					errs.Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	stop()

	snap := loadReg.Snapshot()
	rep := &report{
		Requests:  snap.Counter("mapload.requests"),
		Errors:    snap.Counter("mapload.errors"),
		Published: published.Load(),
		Frames:    frames.Load(),
		P50:       snap.Quantile("mapload.latency_us", 0.50),
		P99:       snap.Quantile("mapload.latency_us", 0.99),
		P999:      snap.Quantile("mapload.latency_us", 0.999),
	}
	count := snap.Histogram("mapload.latency_us").Count
	procs := runtime.GOMAXPROCS(0)
	// Follower mode keeps the MapLoadLatency* names for its read quantiles
	// — deliberately: CI produces the direct-read artifact (BENCH_PR8) and
	// the follower-read artifact (BENCH_PR10) on the same runner in the
	// same job, so benchjson's exact-name diff becomes a relative gate
	// ("replicated reads may cost at most N× direct reads"), immune to
	// runner speed. The MapLoadFollowerRead* aliases carry the same values
	// under self-documenting names for artifact history.
	type quant struct {
		name string
		us   float64
	}
	quantiles := []quant{
		{"MapLoadLatencyP50", rep.P50},
		{"MapLoadLatencyP99", rep.P99},
		{"MapLoadLatencyP999", rep.P999},
	}
	if cfg.follower {
		quantiles = append(quantiles,
			quant{"MapLoadFollowerReadP50", rep.P50},
			quant{"MapLoadFollowerReadP99", rep.P99},
			quant{"MapLoadFollowerReadP999", rep.P999})
	}
	for _, q := range quantiles {
		rep.Results = append(rep.Results, benchResult{
			Name: q.name, Procs: procs, Iterations: count, NsPerOp: q.us * 1000,
		})
	}
	if cfg.follower {
		// Leader publish churn: the interval the rival publisher actually
		// achieved (ns between visible generations), and watch fan-out:
		// mean ns between diff frames as seen by one subscriber.
		if p := rep.Published; p > 0 {
			rep.Results = append(rep.Results, benchResult{
				Name: "MapLoadFollowerPublishNs", Procs: procs, Iterations: p,
				NsPerOp: float64(cfg.duration.Nanoseconds()) / float64(p),
			})
		}
		if f := rep.Frames; f > 0 && cfg.watchers > 0 {
			rep.Results = append(rep.Results, benchResult{
				Name: "MapLoadWatchFrameNs", Procs: procs, Iterations: f,
				NsPerOp: float64(cfg.duration.Nanoseconds()) * float64(cfg.watchers) / float64(f),
			})
		}
	}
	return rep, nil
}

// selfServe builds the self-contained target: measure a world once,
// publish it, serve the real HTTP stack on loopback, and start the rival
// publisher that republishes fresh generations of the same results every
// publishEvery. Returns the base URL, the query-path mix (seeded with real
// addresses from the served map), and a stop function (idempotent).
func selfServe(cfg config, published *atomic.Int64) (string, []string, func(), error) {
	prof, ok := topo.ProfileByName(cfg.profile)
	if !ok {
		return "", nil, nil, fmt.Errorf("unknown profile %q", cfg.profile)
	}
	s := eval.Build(prof, cfg.seed)
	s.RunAll(scamper.Config{})

	reg := obs.New()
	store := mapdb.NewStore(0, reg)
	snap := mapdb.Compile(s.Net.HostASN, s.Results)
	store.Publish(snap)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	srv := &http.Server{Handler: mapdb.HandlerWithStatus(store, reg, s.Spans)}
	go func() { _ = srv.Serve(ln) }()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(cfg.publishEvery)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				store.Publish(mapdb.Compile(s.Net.HostASN, s.Results))
				published.Add(1)
			}
		}
	}()

	var once sync.Once
	stop := func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			_ = srv.Close()
		})
	}
	return "http://" + ln.Addr().String(), queryPaths(snap), stop, nil
}

// followerServe builds the replication target: the selfServe leader (rival
// publisher included), an in-process Follower tailing the leader's watch
// stream into its own Store, and cfg.watchers extra /v1/watch subscribers
// counting streamed diff frames. The returned base URL is the FOLLOWER's,
// so the query workers measure reads served from replicated snapshots
// while diffs apply underneath them.
func followerServe(cfg config, published, frames *atomic.Int64) (string, []string, func(), error) {
	leaderBase, paths, leaderStop, err := selfServe(cfg, published)
	if err != nil {
		return "", nil, nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	freg := obs.New()
	fstore := mapdb.NewStore(0, freg)
	f := &mapdb.Follower{
		Leader: leaderBase, Store: fstore, Reg: freg,
		RedialMin: 10 * time.Millisecond, RedialMax: 100 * time.Millisecond,
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = f.Run(ctx)
	}()

	// Don't open the doors until the first full sync lands: a follower with
	// no generation answers 503 to everything, which would measure nothing.
	for t0 := time.Now(); fstore.Current() == nil; time.Sleep(5 * time.Millisecond) {
		if time.Since(t0) > 10*time.Second {
			cancel()
			wg.Wait()
			leaderStop()
			return "", nil, nil, fmt.Errorf("follower never synced from %s", leaderBase)
		}
	}

	for w := 0; w < cfg.watchers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				wc := &mapdb.WatchClient{Base: leaderBase}
				_ = wc.Run(ctx, func(fr mapdb.WatchFrame) error {
					if fr.Type == "diff" {
						frames.Add(1)
					}
					return nil
				})
				select {
				case <-ctx.Done():
				case <-time.After(10 * time.Millisecond):
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		wg.Wait()
		leaderStop()
		return "", nil, nil, err
	}
	srv := &http.Server{Handler: mapdb.HandlerWithStatus(fstore, freg, obs.NewSpanLog(16))}
	go func() { _ = srv.Serve(ln) }()

	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			wg.Wait()
			_ = srv.Close()
			leaderStop()
		})
	}
	return "http://" + ln.Addr().String(), paths, stop, nil
}

// queryPaths assembles the path mix from the served map itself, so owner
// and link lookups hit real entries (the hot path) rather than 404s.
func queryPaths(snap *mapdb.Snapshot) []string {
	paths := []string{"/v1/gen", "/v1/status"}
	for i, l := range snap.Links() {
		if i >= 8 {
			break
		}
		if !l.Far.IsZero() {
			paths = append(paths,
				"/v1/owner?ip="+l.Far.String(),
				"/v1/link?near="+l.Near.String()+"&far="+l.Far.String())
		}
		paths = append(paths, "/v1/neighbors?as="+l.FarAS.String())
	}
	return paths
}
