// Command covsummary turns a Go coverprofile on stdin into a per-package
// statement-coverage summary on stdout — the machine-readable artifact CI
// uploads so coverage history can be compared across PRs.
//
// Usage:
//
//	go test -coverprofile=cover.out ./...
//	covsummary < cover.out > COVERAGE.json
//
// With -baseline and -new it instead compares two such artifacts and acts
// as the CI soft ratchet: any package whose coverage dropped more than
// -max-drop percentage points versus the baseline (and the module total)
// gets a GitHub Actions ::warning:: annotation. The ratchet never fails
// the build — coverage context, not a merge gate — so it always exits 0
// unless the inputs are unreadable.
//
//	covsummary -baseline COVERAGE_BASELINE.json -new COVERAGE.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// pkgCov is the coverage of one package (or the module total).
type pkgCov struct {
	Package    string  `json:"package"`
	Statements int64   `json:"statements"`
	Covered    int64   `json:"covered"`
	Pct        float64 `json:"pct"`
}

// summary is the artifact shape: module total plus per-package rows.
type summary struct {
	TotalPct float64  `json:"total_pct"`
	Packages []pkgCov `json:"packages"`
}

func main() {
	baseline := flag.String("baseline", "", "baseline artifact for compare mode")
	newPath := flag.String("new", "", "candidate artifact for compare mode")
	maxDrop := flag.Float64("max-drop", 2.0,
		"percentage-point coverage drop per package (or total) that triggers a warning")
	flag.Parse()

	if (*baseline == "") != (*newPath == "") {
		fmt.Fprintln(os.Stderr, "covsummary: -baseline and -new must be given together")
		os.Exit(2)
	}
	if *baseline != "" {
		warnings, err := compare(*baseline, *newPath, *maxDrop)
		if err != nil {
			fmt.Fprintln(os.Stderr, "covsummary:", err)
			os.Exit(1)
		}
		for _, w := range warnings {
			fmt.Printf("::warning::%s\n", w)
		}
		if len(warnings) == 0 {
			fmt.Println("coverage: no package dropped beyond the ratchet")
		}
		return // soft ratchet: warnings never fail the build
	}

	sum, err := parseProfile(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covsummary:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintln(os.Stderr, "covsummary:", err)
		os.Exit(1)
	}
}

// parseProfile reads a coverprofile ("mode:" header then
// "file.go:sl.sc,el.ec numStmts count" lines) and aggregates statement
// coverage per package. Blocks listed more than once (merged profiles)
// count each occurrence's statements once per line, matching `go tool
// cover -func` totals closely enough for ratcheting purposes.
func parseProfile(r io.Reader) (summary, error) {
	pkgs := make(map[string]*pkgCov)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		colon := strings.LastIndex(line, ":")
		if colon < 0 {
			return summary{}, fmt.Errorf("line %d: no file separator: %q", lineNo, line)
		}
		file := line[:colon]
		fields := strings.Fields(line[colon+1:])
		if len(fields) != 3 {
			return summary{}, fmt.Errorf("line %d: want 'range stmts count', got %q", lineNo, line)
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return summary{}, fmt.Errorf("line %d: statement count: %v", lineNo, err)
		}
		count, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return summary{}, fmt.Errorf("line %d: hit count: %v", lineNo, err)
		}
		pkg := path.Dir(file)
		pc := pkgs[pkg]
		if pc == nil {
			pc = &pkgCov{Package: pkg}
			pkgs[pkg] = pc
		}
		pc.Statements += stmts
		if count > 0 {
			pc.Covered += stmts
		}
	}
	if err := sc.Err(); err != nil {
		return summary{}, err
	}

	var sum summary
	var totStmts, totCov int64
	for _, pc := range pkgs {
		if pc.Statements > 0 {
			pc.Pct = 100 * float64(pc.Covered) / float64(pc.Statements)
		}
		totStmts += pc.Statements
		totCov += pc.Covered
		sum.Packages = append(sum.Packages, *pc)
	}
	sort.Slice(sum.Packages, func(i, j int) bool {
		return sum.Packages[i].Package < sum.Packages[j].Package
	})
	if totStmts > 0 {
		sum.TotalPct = 100 * float64(totCov) / float64(totStmts)
	}
	return sum, nil
}

// ratchet lists the packages (and the total) whose coverage fell more than
// maxDrop percentage points from old to new. Packages new to the candidate
// are fine; packages that vanished are reported — deleted tests look
// exactly like deleted code otherwise.
func ratchet(old, new summary, maxDrop float64) []string {
	var warnings []string
	if drop := old.TotalPct - new.TotalPct; drop > maxDrop {
		warnings = append(warnings, fmt.Sprintf(
			"total coverage dropped %.1f points (%.1f%% -> %.1f%%)", drop, old.TotalPct, new.TotalPct))
	}
	cur := make(map[string]pkgCov, len(new.Packages))
	for _, p := range new.Packages {
		cur[p.Package] = p
	}
	for _, was := range old.Packages {
		now, ok := cur[was.Package]
		if !ok {
			warnings = append(warnings, fmt.Sprintf(
				"package %s disappeared from the coverage profile (was %.1f%%)", was.Package, was.Pct))
			continue
		}
		if drop := was.Pct - now.Pct; drop > maxDrop {
			warnings = append(warnings, fmt.Sprintf(
				"package %s coverage dropped %.1f points (%.1f%% -> %.1f%%)", was.Package, drop, was.Pct, now.Pct))
		}
	}
	return warnings
}

func compare(baselinePath, newPath string, maxDrop float64) ([]string, error) {
	old, err := readSummary(baselinePath)
	if err != nil {
		return nil, err
	}
	cur, err := readSummary(newPath)
	if err != nil {
		return nil, err
	}
	return ratchet(old, cur, maxDrop), nil
}

func readSummary(p string) (summary, error) {
	raw, err := os.ReadFile(p)
	if err != nil {
		return summary{}, err
	}
	var s summary
	if err := json.Unmarshal(raw, &s); err != nil {
		return summary{}, fmt.Errorf("%s: %v", p, err)
	}
	return s, nil
}
