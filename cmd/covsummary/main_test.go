package main

import (
	"strings"
	"testing"
)

const sampleProfile = `mode: atomic
bdrmap/internal/topo/gen.go:13.44,22.2 5 3
bdrmap/internal/topo/gen.go:24.1,26.2 2 0
bdrmap/internal/topo/annot.go:10.1,12.2 3 1
bdrmap/internal/core/infer.go:5.1,9.2 4 0
bdrmap/internal/core/infer.go:11.1,15.2 6 2
`

func TestParseProfile(t *testing.T) {
	sum, err := parseProfile(strings.NewReader(sampleProfile))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Packages) != 2 {
		t.Fatalf("packages = %d, want 2 (%+v)", len(sum.Packages), sum.Packages)
	}
	// Sorted: core before topo.
	core, topo := sum.Packages[0], sum.Packages[1]
	if core.Package != "bdrmap/internal/core" || topo.Package != "bdrmap/internal/topo" {
		t.Fatalf("package order: %+v", sum.Packages)
	}
	if core.Statements != 10 || core.Covered != 6 || core.Pct != 60 {
		t.Errorf("core = %+v, want 6/10 = 60%%", core)
	}
	if topo.Statements != 10 || topo.Covered != 8 || topo.Pct != 80 {
		t.Errorf("topo = %+v, want 8/10 = 80%%", topo)
	}
	if sum.TotalPct != 70 {
		t.Errorf("total = %.1f, want 70", sum.TotalPct)
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, bad := range []string{
		"a.go:1.1,2.2 3",     // missing count
		"no-separator 1 2 3", // no colon
		"a.go:1.1,2.2 x 1",   // bad statements
		"a.go:1.1,2.2 1 x",   // bad count
	} {
		if _, err := parseProfile(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("parseProfile(%q) accepted malformed input", bad)
		}
	}
	// Empty profile is fine: zero packages, zero total.
	sum, err := parseProfile(strings.NewReader("mode: set\n"))
	if err != nil || len(sum.Packages) != 0 || sum.TotalPct != 0 {
		t.Errorf("empty profile: %+v, %v", sum, err)
	}
}

func TestRatchet(t *testing.T) {
	old := summary{
		TotalPct: 70,
		Packages: []pkgCov{
			{Package: "a", Pct: 80},
			{Package: "b", Pct: 60},
			{Package: "gone", Pct: 50},
		},
	}
	cur := summary{
		TotalPct: 66, // 4-point total drop
		Packages: []pkgCov{
			{Package: "a", Pct: 79.5}, // within the ratchet
			{Package: "b", Pct: 55},   // 5-point drop
			{Package: "new", Pct: 10}, // new package, never warned
		},
	}
	warnings := ratchet(old, cur, 2.0)
	if len(warnings) != 3 {
		t.Fatalf("warnings = %d, want 3:\n%s", len(warnings), strings.Join(warnings, "\n"))
	}
	for i, want := range []string{"total coverage dropped", "package b coverage dropped", "package gone disappeared"} {
		if !strings.Contains(warnings[i], want) {
			t.Errorf("warning %d = %q, want it to mention %q", i, warnings[i], want)
		}
	}

	// Identical summaries: silence.
	if w := ratchet(old, old, 2.0); len(w) != 0 {
		t.Errorf("self-compare produced warnings: %v", w)
	}
	// Improvements: silence.
	better := summary{TotalPct: 90, Packages: []pkgCov{{Package: "a", Pct: 95}, {Package: "b", Pct: 85}, {Package: "gone", Pct: 50}}}
	if w := ratchet(old, better, 2.0); len(w) != 0 {
		t.Errorf("improvement produced warnings: %v", w)
	}
}
