// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result — the machine-readable
// artifact CI uploads so benchmark history can be diffed across PRs.
//
// Usage:
//
//	go test -run=NONE -bench . -benchmem . | benchjson > bench.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	var out []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if out == nil {
		out = []result{} // always a valid JSON array, even with no input
	}
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parseLine matches the standard bench line shape:
//
//	BenchmarkName-8  100  1234 ns/op  56 B/op  7 allocs/op
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	var r result
	r.Name = f[0]
	if i := strings.LastIndex(f[0], "-"); i > 0 {
		if p, err := strconv.Atoi(f[0][i+1:]); err == nil {
			r.Name, r.Procs = f[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	if r.NsPerOp == 0 {
		return result{}, false
	}
	return r, true
}
