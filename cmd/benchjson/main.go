// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result — the machine-readable
// artifact CI uploads so benchmark history can be diffed across PRs.
//
// Usage:
//
//	go test -run=NONE -bench . -benchmem . | benchjson > bench.json
//
// With -old and -new it instead diffs two such artifacts and acts as the
// CI regression gate: for every benchmark named in -gate (comma-separated,
// matched as name prefixes), a >-max-regress increase in ns/op or B/op
// versus the old artifact fails the run with exit status 1. All shared
// benchmarks are reported either way.
//
//	benchjson -old BENCH_PR5.json -new BENCH_PR6.json \
//	    -gate BenchmarkTable1LargeAccess,BenchmarkValidation
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	oldPath := flag.String("old", "", "baseline artifact for diff mode")
	newPath := flag.String("new", "", "candidate artifact for diff mode")
	gate := flag.String("gate", "BenchmarkTable1LargeAccess,BenchmarkValidation",
		"comma-separated benchmark name prefixes the regression gate enforces")
	maxRegress := flag.Float64("max-regress", 0.10,
		"maximum tolerated fractional increase in ns/op or B/op for gated benchmarks")
	flag.Parse()

	if (*oldPath == "") != (*newPath == "") {
		fmt.Fprintln(os.Stderr, "benchjson: -old and -new must be given together")
		os.Exit(2)
	}
	if *oldPath != "" {
		os.Exit(diff(*oldPath, *newPath, strings.Split(*gate, ","), *maxRegress))
	}

	var out []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if out == nil {
		out = []result{} // always a valid JSON array, even with no input
	}
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parseLine matches the standard bench line shape:
//
//	BenchmarkName-8  100  1234 ns/op  56 B/op  7 allocs/op
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	var r result
	r.Name = f[0]
	if i := strings.LastIndex(f[0], "-"); i > 0 {
		if p, err := strconv.Atoi(f[0][i+1:]); err == nil {
			r.Name, r.Procs = f[0][:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	if r.NsPerOp == 0 {
		return result{}, false
	}
	return r, true
}

// diff compares two artifacts and returns the process exit status: 1 if
// any gated benchmark regressed past maxRegress in time or bytes.
func diff(oldPath, newPath string, gates []string, maxRegress float64) int {
	oldRes, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRes, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	gated := func(name string) bool {
		for _, g := range gates {
			if g != "" && strings.HasPrefix(name, strings.TrimSpace(g)) {
				return true
			}
		}
		return false
	}
	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	seenGated := 0
	for _, name := range names {
		n := newRes[name]
		o, ok := oldRes[n.Name]
		if !ok {
			continue
		}
		dt := ratio(n.NsPerOp, o.NsPerOp)
		db := ratio(float64(n.BytesPerOp), float64(o.BytesPerOp))
		mark := " "
		if gated(n.Name) {
			seenGated++
			if dt > maxRegress || db > maxRegress {
				mark = "!"
				failed++
			} else {
				mark = "*"
			}
		}
		fmt.Printf("%s %-40s time %+7.1f%%  bytes %+7.1f%%\n", mark, n.Name, dt*100, db*100)
	}
	if seenGated == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no gated benchmark (%s) present in both artifacts\n",
			strings.Join(gates, ","))
		return 1
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d gated benchmark(s) regressed >%.0f%% vs %s\n",
			failed, maxRegress*100, oldPath)
		return 1
	}
	return 0
}

// ratio returns the fractional change from old to new (0 when old is 0,
// so a benchmark that never reported the metric cannot trip the gate).
func ratio(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return cur/base - 1
}

// load reads one artifact into a by-name map.
func load(path string) (map[string]result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(raw, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]result, len(rs))
	for _, r := range rs {
		out[r.Name] = r
	}
	return out, nil
}
